"""Planner-as-a-service: (family, cluster, budget) → plan, concurrently.

The ROADMAP's north star is answering "how should I parallelize this
model on this cluster?" at interactive latency.  The pieces exist —
:func:`repro.sim.predict_batch` prices a whole config space in
milliseconds, the :class:`~repro.slapo.tuner.cache.TrialCache` makes
measurements durable, :class:`~repro.slapo.tuner.workers.MeasurementPool`
survives crashed trials — and :class:`PlanService` glues them behind one
concurrent query API:

* **queries** are :class:`PlanRequest` values (model family, world
  size, measurement budget, space bounds) answered on a thread pool;
* **traces are shared**: each family is traced once, under a build
  lock, and every subsequent query against that family prices off the
  cached trace;
* **identical in-flight queries coalesce**: a request equal to one
  currently being answered joins its future instead of re-pricing the
  space, so a thundering herd of identical queries does the work once
  (:attr:`PlanService.coalesced` counts the piggybacks);
* **budget > 0** spends real measurements on the top predicted
  configs, consulting the shared :class:`TrialCache` first and writing
  new measurements back, so repeated queries converge to measured
  answers at zero extra cost.

::

    with plan_service(trace_fn, cache=TrialCache(path)) as service:
        response = service.query(PlanRequest("GPT", world_size=64))
        response.config        # best plan found
        response.throughput    # predicted (or measured) samples/sec
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

from repro.distributed.topology import ClusterSpec, p3dn_cluster

from ..sim.batch import predict_batch
from .tuner.cache import TrialCache
from .tuner.cost_model import SimCostModel
from .tuner.learned import ResidualCostModel
from .tuner.space import enumerate_space, parallelism_symbols
from .tuner.workers import MeasurementPool


@dataclass(frozen=True)
class PlanRequest:
    """One plan query.  Frozen and hashable: equal requests coalesce."""

    #: model family name, resolved by the service's ``trace_fn``
    family: str
    #: total GPU count to plan for
    world_size: int
    #: measured trials to spend on the top predicted configs
    #: (0 = answer from prediction alone)
    budget: int = 0
    max_tp: int | None = None
    max_pp: int | None = None
    micro_batches: tuple = (1, 2, 4, 8)
    zero_stages: tuple = (0, 1, 3)

    def space_fn(self) -> Callable:
        """The define-by-run space this request spans."""
        def update(space):
            parallelism_symbols(space, self.world_size,
                                max_tp=self.max_tp, max_pp=self.max_pp)
            space.create_symbol("zero_stage", list(self.zero_stages))
            space.create_symbol("micro_batch", list(self.micro_batches))
        return update


@dataclass
class PlanResponse:
    """The service's answer to one :class:`PlanRequest`."""

    request: PlanRequest
    #: best configuration found (None when nothing fits)
    config: dict | None
    #: its samples/sec — measured when trials were spent, else predicted
    throughput: float
    space_size: int
    num_feasible: int
    #: True when the answer rests on prediction alone
    predicted: bool = True
    #: trials actually measured for this answer (cache hits excluded)
    num_measured: int = 0
    #: measured trials served from the TrialCache
    num_cache_hits: int = 0
    #: (config, throughput, valid) for every measured candidate
    measurements: list = field(default_factory=list)
    #: which model ranked the candidates: "analytic", or "residual" when
    #: a learned correction trained on this (family, world_size) corpus
    #: was active for this answer
    cost_model: str = "analytic"


class PlanService:
    """Concurrent plan-query front end over the batch planner.

    Parameters
    ----------
    trace_fn:
        ``trace_fn(family) -> (model, ModelTrace)``.  Called at most
        once per family (under a build lock); the result is cached for
        the service's lifetime.
    cluster_fn:
        ``cluster_fn(world_size) -> ClusterSpec``; defaults to p3dn
        nodes (8 V100s each, the paper's testbed).
    cache:
        Shared :class:`TrialCache` consulted before and updated after
        every measured trial; saved after each budgeted query.
    measure_fn:
        ``measure_fn(config) -> float | None`` for budgeted queries —
        either a plain callable (run on the query thread) or a
        :class:`MeasurementPool` for crash-isolated subprocess trials.
        Without it, budgets fall back to prediction-only answers.
    max_workers:
        Query threads answering in parallel.
    learned:
        Opportunistically retrain a
        :class:`~repro.slapo.tuner.learned.ResidualCostModel` per
        (family, world_size) from the shared cache's measurements and
        re-rank feasible candidates with it once the matching corpus
        reaches ``min_corpus`` rows.  Budgeted queries write their
        measurements back tagged with that context, so a service that
        keeps answering queries keeps sharpening its own ranking.
    min_corpus:
        Matching measurements required before a correction activates.
    """

    def __init__(self, trace_fn: Callable[[str], tuple],
                 cluster_fn: Callable[[int], ClusterSpec] | None = None,
                 cache: TrialCache | None = None,
                 measure_fn=None,
                 max_workers: int = 4,
                 learned: bool = True,
                 min_corpus: int = 8):
        self._trace_fn = trace_fn
        self._cluster_fn = cluster_fn or self._default_cluster
        self.cache = cache
        self._measure = measure_fn
        self.learned = learned
        self.min_corpus = min_corpus
        self._executor = ThreadPoolExecutor(max_workers=max_workers)
        self._lock = threading.RLock()
        self._inflight: dict[PlanRequest, Future] = {}
        self._traces: dict[str, tuple] = {}
        self._trace_lock = threading.Lock()
        self._measure_lock = threading.Lock()
        #: (family, world_size) → (cache size at fit, ResidualCostModel)
        self._corrections: dict[tuple, tuple[int, ResidualCostModel]] = {}
        self._learned_lock = threading.Lock()
        #: total queries accepted (including coalesced ones)
        self.queries = 0
        #: queries answered by joining an identical in-flight future
        self.coalesced = 0
        #: traces built (≤ number of distinct families queried)
        self.traces_built = 0
        #: residual-correction refits triggered by corpus growth
        self.refits = 0

    @staticmethod
    def _default_cluster(world_size: int) -> ClusterSpec:
        return p3dn_cluster(max(1, (int(world_size) + 7) // 8))

    # ------------------------------------------------------------------ #
    def submit(self, request: PlanRequest) -> Future:
        """Enqueue a query; identical in-flight requests share a future."""
        with self._lock:
            self.queries += 1
            future = self._inflight.get(request)
            if future is not None:
                self.coalesced += 1
                return future
            future = self._executor.submit(self._answer, request)
            self._inflight[request] = future
            future.add_done_callback(
                lambda _done, key=request: self._retire(key))
            return future

    def query(self, request: PlanRequest) -> PlanResponse:
        """Blocking :meth:`submit`."""
        return self.submit(request).result()

    def _retire(self, key: PlanRequest) -> None:
        with self._lock:
            self._inflight.pop(key, None)

    # ------------------------------------------------------------------ #
    def _traced(self, family: str) -> tuple:
        entry = self._traces.get(family)
        if entry is None:
            with self._trace_lock:  # double-checked: build once only
                entry = self._traces.get(family)
                if entry is None:
                    entry = self._trace_fn(family)
                    self._traces[family] = entry
                    self.traces_built += 1
        return entry

    def _correction(self, request: PlanRequest, model, trace
                    ) -> ResidualCostModel | None:
        """The (family, world_size) residual correction, refitted from
        the shared cache whenever it has grown since the last fit.
        Returns None until the matching corpus reaches ``min_corpus``.
        """
        if self.cache is None or not self.learned:
            return None
        key = (request.family, request.world_size)
        with self._learned_lock:
            size = len(self.cache)
            fitted = self._corrections.get(key)
            if fitted is not None and fitted[0] == size:
                residual = fitted[1]
            else:
                # Refit into a fresh model and swap it in whole: callers
                # predict outside this lock, and fit() mutates weights
                # in place — another thread may be mid-predict on the
                # previous residual.  The analytic model is reused (it
                # is read-only after construction).
                if fitted is None:
                    analytic = SimCostModel(
                        lambda _config, entry=(model, trace): entry,
                        self._cluster_fn(request.world_size),
                        parallel=SimCostModel.parallel_fn(
                            request.world_size),
                        trace_key_fn=lambda _config: request.family)
                else:
                    analytic = fitted[1].analytic
                residual = ResidualCostModel(
                    analytic, min_samples=self.min_corpus)
                residual.fit_from_cache(self.cache, context={
                    "family": request.family,
                    "world_size": request.world_size,
                })
                self.refits += 1
                self._corrections[key] = (size, residual)
        return residual if residual.active else None

    def _answer(self, request: PlanRequest) -> PlanResponse:
        model, trace = self._traced(request.family)
        cluster = self._cluster_fn(request.world_size)
        configs = enumerate_space(request.space_fn())
        batch = predict_batch(
            trace, model, cluster, configs,
            parallel_fn=SimCostModel.parallel_fn(request.world_size))
        response = PlanResponse(
            request=request, config=None, throughput=0.0,
            space_size=len(configs), num_feasible=batch.num_feasible)
        if batch.num_feasible == 0:
            return response
        order = sorted(range(len(configs)),
                       key=lambda i: (-batch.throughput[i], i))
        feasible = [i for i in order if batch.fits[i]]
        correction = self._correction(request, model, trace)
        if correction is not None:
            estimates = correction.predict_many(
                [configs[i] for i in feasible])
            ranked = sorted(
                zip(feasible, estimates),
                key=lambda pair: (-pair[1].throughput, pair[0]))
            feasible = [i for i, _ in ranked]
            response.cost_model = "residual"
            response.throughput = float(ranked[0][1].throughput)
        else:
            response.throughput = float(batch.throughput[feasible[0]])
        response.config = dict(configs[feasible[0]])
        if request.budget > 0 and self._measure is not None:
            self._measure_top(request, configs, batch, feasible, response)
        return response

    def _measure_top(self, request: PlanRequest, configs, batch,
                     feasible, response: PlanResponse) -> None:
        candidates = [configs[i] for i in feasible[:request.budget]]
        to_run: list[dict] = []
        for config in candidates:
            entry = None if self.cache is None else self.cache.get(config)
            if entry is not None:
                response.num_cache_hits += 1
                response.measurements.append(
                    (dict(config), entry["throughput"], entry["valid"]))
            else:
                to_run.append(config)
        if to_run:
            if isinstance(self._measure, MeasurementPool):
                with self._measure_lock:  # the pool is single-consumer
                    outcomes = self._measure.run(to_run)
                measured = [(c, o.throughput, o.valid)
                            for c, o in zip(to_run, outcomes)
                            if not o.lost]  # lost trials stay unmeasured
            else:
                measured = []
                for config in to_run:
                    value = float(self._measure(config) or 0.0)
                    measured.append((config, value, value > 0))
            context = {"family": request.family,
                       "world_size": request.world_size}
            for config, value, valid in measured:
                response.num_measured += 1
                response.measurements.append((dict(config), value, valid))
                if self.cache is not None:
                    self.cache.put(config, value, valid, context=context)
        winner = max((m for m in response.measurements if m[2]),
                     key=lambda m: m[1], default=None)
        if winner is not None:
            response.config, response.throughput = dict(winner[0]), winner[1]
            response.predicted = False
        if self.cache is not None and response.num_measured:
            self.cache.save()

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._executor.shutdown(wait=True)
        if isinstance(self._measure, MeasurementPool):
            self._measure.close()

    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def plan_service(trace_fn: Callable[[str], tuple],
                 **kwargs) -> PlanService:
    """Build a :class:`PlanService` (usable as a context manager)."""
    return PlanService(trace_fn, **kwargs)
