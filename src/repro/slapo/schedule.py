"""The schedule language core (paper §3.1).

``create_schedule(model)`` wraps a model in a hierarchical
:class:`Schedule` that mirrors the module tree: ``sch["encoder.layer.0"]``
addresses the sub-schedule of that submodule, and primitives are invoked as
methods (``subsch.shard("weight", axis=0)``).  The model definition is never
edited — primitives transform modules, parameters, and traced graphs in
place, and every application is recorded for the verifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.distributed import DeviceMesh, single_device_mesh
from repro.framework.module import Module

from .registry import SchedulingError, get_primitive


@dataclass
class PrimitiveRecord:
    """One applied primitive, for verification and inspection."""

    name: str
    path: str
    args: tuple
    kwargs: dict


@dataclass
class ScheduleContext:
    """State shared by every sub-schedule of one scheduled model."""

    root: Module
    mesh: DeviceMesh
    history: list[PrimitiveRecord] = field(default_factory=list)
    #: module paths after which a pipeline stage boundary is cut
    pipeline_cuts: list[str] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def record(self, name: str, path: str, args: tuple, kwargs: dict) -> None:
        self.history.append(PrimitiveRecord(name, path, args, kwargs))

    def applied(self, name: str, path: str) -> bool:
        return any(r.name == name and r.path == path for r in self.history)


class Schedule:
    """A view over one module in the scheduled model's hierarchy."""

    def __init__(self, context: ScheduleContext, path: str = ""):
        object.__setattr__(self, "_context", context)
        object.__setattr__(self, "_path", path)

    # ------------------------------------------------------------------ #
    # Navigation
    # ------------------------------------------------------------------ #
    @property
    def mod(self) -> Module:
        """The live module this schedule addresses."""
        return self._context.root.get_submodule(self._path)

    @property
    def path(self) -> str:
        return self._path

    @property
    def mesh(self) -> DeviceMesh:
        return self._context.mesh

    @property
    def context(self) -> ScheduleContext:
        return self._context

    @property
    def parent(self) -> "Schedule | None":
        if not self._path:
            return None
        parent_path, _, _ = self._path.rpartition(".")
        return Schedule(self._context, parent_path)

    def __getitem__(self, relative_path: str) -> "Schedule":
        full = f"{self._path}.{relative_path}" if self._path \
            else relative_path
        # Fail fast on typos: resolving checks existence.
        self._context.root.get_submodule(full)
        return Schedule(self._context, full)

    def child_names(self) -> list[str]:
        return [name for name, _ in self.mod.named_children()]

    def named_schedules(self):
        """Iterate (path, Schedule) over this subtree, preorder."""
        prefix = self._path
        for rel_path, _ in self.mod.named_modules():
            full = f"{prefix}.{rel_path}" if prefix and rel_path else \
                (rel_path or prefix)
            yield full, Schedule(self._context, full)

    # ------------------------------------------------------------------ #
    # Primitive dispatch
    # ------------------------------------------------------------------ #
    def __getattr__(self, name: str):
        primitive = get_primitive(name)
        if primitive is None:
            raise AttributeError(
                f"Schedule has no primitive or attribute {name!r} "
                f"(registered primitives: see slapo.list_primitives())"
            )

        def invoke(*args, **kwargs):
            primitive.check(self, *args, **kwargs)
            result = primitive.apply(self, *args, **kwargs)
            self._context.record(name, self._path, args, kwargs)
            return result

        invoke.__name__ = name
        return invoke

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError(
            "schedules are immutable views; use primitives to transform "
            "the model"
        )

    # ------------------------------------------------------------------ #
    # Introspection helpers used by primitives / the verifier
    # ------------------------------------------------------------------ #
    @property
    def is_traced(self) -> bool:
        from repro.fx import GraphModule

        return isinstance(self.mod, GraphModule)

    def require_traced(self, primitive_name: str) -> None:
        if not self.is_traced:
            raise SchedulingError(
                f".{primitive_name}() requires a static graph; call "
                f".trace() on {self._path or '<root>'} first (paper Table 2)"
            )

    def replace_self(self, new_module: Module, name: str | None = None
                     ) -> "Schedule":
        """Swap the module this schedule addresses (optionally renaming)."""
        if not self._path:
            raise SchedulingError("cannot replace the root module itself")
        parent_path, _, leaf = self._path.rpartition(".")
        parent_mod = self._context.root.get_submodule(parent_path)
        if name is None or name == leaf:
            parent_mod.set_submodule(leaf, new_module)
            return self
        del parent_mod._modules[leaf]
        parent_mod.add_module(name, new_module)
        new_path = f"{parent_path}.{name}" if parent_path else name
        return Schedule(self._context, new_path)

    def __repr__(self) -> str:
        return f"Schedule(path={self._path or '<root>'!r}, " \
               f"module={type(self.mod).__name__})"


def create_schedule(model: Module, mesh: DeviceMesh | None = None
                    ) -> Schedule:
    """Create the default schedule for ``model`` (paper Fig. 3).

    The schedule executes the model exactly as defined until primitives are
    applied.  ``mesh`` supplies the distributed context for ``.shard`` /
    ``.sync`` / ``.pipeline_split``; the default is a single device.
    """
    if not isinstance(model, Module):
        raise TypeError(f"expected a Module, got {type(model).__name__}")
    context = ScheduleContext(root=model, mesh=mesh or single_device_mesh())
    return Schedule(context, "")
