"""Megatron-LM framework dialect (paper §4).

Megatron's runtime expects the model wrapped in its own module type with
``set_input_tensor`` plumbing for pipeline stages, plus loss handled inside
the wrapper.  The dialect provides exactly that veneer around a scheduled
model so it can run under the Megatron-style trainer in
:mod:`repro.baselines.megatron`.
"""

from __future__ import annotations

from repro.framework.module import Module


class MegatronModuleWrapper(Module):
    """Megatron-style model wrapper: input-tensor injection per stage."""

    def __init__(self, model: Module, pre_process: bool = True,
                 post_process: bool = True):
        super().__init__()
        self.model = model
        self.pre_process = pre_process
        self.post_process = post_process
        self._input_tensor = None

    def set_input_tensor(self, tensor) -> None:
        """Pipeline runtime injects the activation from the previous stage."""
        self._input_tensor = tensor

    def forward(self, *args, **kwargs):
        if not self.pre_process and self._input_tensor is not None:
            args = (self._input_tensor,) + tuple(args[1:])
            self._input_tensor = None
        return self.model(*args, **kwargs)


def to_megatron(model: Module) -> MegatronModuleWrapper:
    return MegatronModuleWrapper(model)
