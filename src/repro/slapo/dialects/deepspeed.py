"""DeepSpeed framework dialect (paper §4).

The DeepSpeed pipeline runtime requires each stage to consume and produce a
*single tuple*.  The dialect therefore (1) packs/unpacks stage I/O into
tuples and (2) relies on the liveness analysis performed during graph
splitting to thread through tensors that a stage does not use itself but a
later stage needs — the "bypass" logic the paper describes.

The ZeRO side of the dialect annotates the model with the metadata the
DeepSpeed-like runtime (and the performance simulator) reads: which
optimizer-state partitioning stage to apply and over which group.
"""

from __future__ import annotations

from repro.framework.layers import ModuleList
from repro.framework.module import Module


class DeepSpeedStageWrapper(Module):
    """Adapts a stage GraphModule to DeepSpeed's tuple-in/tuple-out ABI."""

    def __init__(self, stage: Module, index: int, total: int):
        super().__init__()
        self.stage = stage
        self.index = index
        self.total = total

    def forward(self, inputs):
        if not isinstance(inputs, tuple):
            inputs = (inputs,)
        outputs = self.stage(*inputs)
        if self.index == self.total - 1:
            return outputs  # final stage returns the model's real output
        if not isinstance(outputs, tuple):
            outputs = (outputs,)
        return outputs


class DeepSpeedPipelineModule(Module):
    """The dialect's equivalent of ``deepspeed.pipe.PipelineModule``."""

    def __init__(self, stages: list[Module]):
        super().__init__()
        total = len(stages)
        self.stages = ModuleList([
            DeepSpeedStageWrapper(stage, index, total)
            for index, stage in enumerate(stages)
        ])

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def forward(self, *args):
        value: object = args
        for stage in self.stages:
            value = stage(value)
        return value


def attach_zero_metadata(model: Module, context, stage: int = 3) -> None:
    """Mark the model for ZeRO-style partitioned data parallelism."""
    model._slapo_meta["zero_stage"] = stage
    model._slapo_meta["zero_group"] = context.mesh.dp_group.ranks
