"""Framework dialects: run scheduled models on external runtimes (paper §4)."""

from .deepspeed import (
    DeepSpeedPipelineModule,
    DeepSpeedStageWrapper,
    attach_zero_metadata,
)
from .megatron import MegatronModuleWrapper, to_megatron

__all__ = [
    "DeepSpeedPipelineModule", "DeepSpeedStageWrapper",
    "attach_zero_metadata", "MegatronModuleWrapper", "to_megatron",
]
