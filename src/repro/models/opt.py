"""HuggingFace-style OPT (Zhang et al. 2022): decoder-only with ReLU MLPs.

Paths mirror ``transformers.OPTForCausalLM``::

    model.decoder.embed_tokens / embed_positions
    model.decoder.layers.{i}.self_attn.{q_proj,k_proj,v_proj,out_proj}
    model.decoder.layers.{i}.{self_attn_layer_norm,fc1,fc2,final_layer_norm}
    lm_head
"""

from __future__ import annotations

from repro import framework as fw
from repro.framework import functional as F

from .configs import TransformerConfig


class OPTAttention(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        h, dtype = config.hidden_size, config.dtype
        self.num_heads = config.num_heads
        self.head_dim = config.head_dim
        self.attn_dropout = fw.Dropout(config.dropout)
        self.q_proj = fw.Linear(h, h, dtype=dtype, device=device)
        self.k_proj = fw.Linear(h, h, dtype=dtype, device=device)
        self.v_proj = fw.Linear(h, h, dtype=dtype, device=device)
        self.out_proj = fw.Linear(h, h, dtype=dtype, device=device)
        self.dropout = fw.Dropout(config.dropout)

    def forward(self, hidden_states):
        q = F.split_heads(self.q_proj(hidden_states), self.num_heads)
        k = F.split_heads(self.k_proj(hidden_states), self.num_heads)
        v = F.split_heads(self.v_proj(hidden_states), self.num_heads)
        scores = q @ k.transpose(-2, -1)
        scores = scores / (self.head_dim ** 0.5)
        scores = F.apply_causal_mask(scores)
        probs = self.attn_dropout(F.softmax(scores, dim=-1))
        context = probs @ v
        return self.dropout(self.out_proj(F.merge_heads(context)))


class OPTDecoderLayer(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        h, dtype, eps = config.hidden_size, config.dtype, config.layer_norm_eps
        self.self_attn = OPTAttention(config, device)
        self.self_attn_layer_norm = fw.LayerNorm(h, eps=eps, dtype=dtype,
                                                 device=device)
        self.fc1 = fw.Linear(h, config.intermediate_size, dtype=dtype,
                             device=device)
        self.fc2 = fw.Linear(config.intermediate_size, h, dtype=dtype,
                             device=device)
        self.final_layer_norm = fw.LayerNorm(h, eps=eps, dtype=dtype,
                                             device=device)
        self.dropout = fw.Dropout(config.dropout)

    def forward(self, hidden_states):
        # Pre-LN decoder layer, as in OPT.
        residual = hidden_states
        hidden_states = self.self_attn(
            self.self_attn_layer_norm(hidden_states))
        hidden_states = residual + hidden_states
        residual = hidden_states
        hidden_states = F.relu(self.fc1(
            self.final_layer_norm(hidden_states)))
        hidden_states = self.dropout(self.fc2(hidden_states))
        return residual + hidden_states


class OPTDecoder(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        h, dtype = config.hidden_size, config.dtype
        self.embed_tokens = fw.Embedding(config.vocab_size, h, dtype=dtype,
                                         device=device)
        self.embed_positions = fw.Embedding(config.max_seq_len, h,
                                            dtype=dtype, device=device)
        self.layers = fw.ModuleList([
            OPTDecoderLayer(config, device)
            for _ in range(config.num_layers)
        ])
        self.final_layer_norm = fw.LayerNorm(h, eps=config.layer_norm_eps,
                                             dtype=dtype, device=device)

    def forward(self, input_ids):
        positions = F.position_ids(input_ids)
        x = self.embed_tokens(input_ids) + self.embed_positions(positions)
        for layer in self.layers:
            x = layer(x)
        return self.final_layer_norm(x)


class OPTModel(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.config = config
        self.decoder = OPTDecoder(config, device)

    def forward(self, input_ids):
        return self.decoder(input_ids)


class OPTForCausalLM(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.config = config
        self.model = OPTModel(config, device)
        self.lm_head = fw.Linear(config.hidden_size, config.vocab_size,
                                 bias=False, dtype=config.dtype,
                                 device=device)
        if config.tie_embeddings:
            self.lm_head.weight = self.model.decoder.embed_tokens.weight

    def forward(self, input_ids):
        return self.lm_head(self.model(input_ids))
