"""WideResNet (Zagoruyko & Komodakis 2016), torchvision-style bottlenecks.

Paths mirror ``torchvision.models.wide_resnet101_2`` (conv1/bn1/layer{1-4}/
fc), with the per-group width scaled up to reach the paper's 2.4B
parameters.  This is the one convolutional (fp32) model in Table 3,
exercising Slapo on non-Transformer structures.
"""

from __future__ import annotations

from repro import framework as fw
from repro.framework import dtypes
from repro.framework import functional as F

from .configs import ResNetConfig

_EXPANSION = 4


class Bottleneck(fw.Module):
    def __init__(self, in_planes: int, planes: int, stride: int = 1,
                 downsample: fw.Module | None = None, device: str = "cpu",
                 dtype=dtypes.float32):
        super().__init__()
        width = planes
        self.conv1 = fw.Conv2d(in_planes, width, 1, bias=False,
                               device=device, dtype=dtype)
        self.bn1 = fw.BatchNorm2d(width, device=device, dtype=dtype)
        self.conv2 = fw.Conv2d(width, width, 3, stride=stride, padding=1,
                               bias=False, device=device, dtype=dtype)
        self.bn2 = fw.BatchNorm2d(width, device=device, dtype=dtype)
        self.conv3 = fw.Conv2d(width, planes * _EXPANSION // 1, 1,
                               bias=False, device=device, dtype=dtype)
        self.bn3 = fw.BatchNorm2d(planes * _EXPANSION // 1, device=device,
                                  dtype=dtype)
        self.relu = fw.ReLU()
        self.add_module("downsample", downsample)

    def forward(self, x):
        identity = x
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        if self._modules.get("downsample") is not None:
            identity = self._modules["downsample"](x)
        return self.relu(out + identity)


class WideResNet(fw.Module):
    def __init__(self, config: ResNetConfig, device: str = "cpu"):
        super().__init__()
        self.config = config
        dtype = config.dtype
        width = config.width_per_group
        self.inplanes = 64
        self.conv1 = fw.Conv2d(3, 64, 7, stride=2, padding=3, bias=False,
                               device=device, dtype=dtype)
        self.bn1 = fw.BatchNorm2d(64, device=device, dtype=dtype)
        self.relu = fw.ReLU()
        self.maxpool = fw.MaxPool2d(3, stride=2, padding=1)
        self.layer1 = self._make_layer(width, config.layers[0], 1, device,
                                       dtype)
        self.layer2 = self._make_layer(width * 2, config.layers[1], 2,
                                       device, dtype)
        self.layer3 = self._make_layer(width * 4, config.layers[2], 2,
                                       device, dtype)
        self.layer4 = self._make_layer(width * 8, config.layers[3], 2,
                                       device, dtype)
        self.avgpool = fw.AdaptiveAvgPool2d(1)
        self.fc = fw.Linear(width * 8 * _EXPANSION, config.num_classes,
                            device=device, dtype=dtype)

    def _make_layer(self, planes: int, blocks: int, stride: int,
                    device: str, dtype) -> fw.Sequential:
        downsample = None
        if stride != 1 or self.inplanes != planes * _EXPANSION:
            downsample = fw.Sequential(
                fw.Conv2d(self.inplanes, planes * _EXPANSION, 1,
                          stride=stride, bias=False, device=device,
                          dtype=dtype),
                fw.BatchNorm2d(planes * _EXPANSION, device=device,
                               dtype=dtype),
            )
        layers = [Bottleneck(self.inplanes, planes, stride, downsample,
                             device, dtype)]
        self.inplanes = planes * _EXPANSION
        for _ in range(1, blocks):
            layers.append(Bottleneck(self.inplanes, planes, device=device,
                                     dtype=dtype))
        return fw.Sequential(*layers)

    def forward(self, x):
        x = self.maxpool(self.relu(self.bn1(self.conv1(x))))
        x = self.layer1(x)
        x = self.layer2(x)
        x = self.layer3(x)
        x = self.layer4(x)
        x = self.avgpool(x)
        return self.fc(F.flatten(x, 1))
