"""HuggingFace-style LLaMA (Touvron et al. 2023).

Paths mirror ``transformers.LlamaForCausalLM``::

    model.embed_tokens
    model.layers.{i}.self_attn.{q_proj,k_proj,v_proj,o_proj}
    model.layers.{i}.mlp.{gate_proj,up_proj,down_proj}
    model.layers.{i}.{input_layernorm,post_attention_layernorm}  (RMSNorm)
    model.norm / lm_head

Distinctives vs GPT: RMSNorm, SwiGLU MLP, rotary position embeddings, and
no biases anywhere — the architecture the paper highlights as "emerging"
(§5.2), supportable in Slapo without Megatron-style reimplementation.
"""

from __future__ import annotations

import numpy as np

from repro import framework as fw
from repro.framework import functional as F
from repro.framework.tensor import Tensor

from .configs import TransformerConfig


def _rope_tables(seq_len: int, head_dim: int, dtype) -> tuple[Tensor, Tensor]:
    """Precomputed RoPE cos/sin tables of shape (seq, head_dim)."""
    inv_freq = 1.0 / (10000.0 ** (np.arange(0, head_dim, 2) / head_dim))
    t = np.arange(seq_len)
    freqs = np.outer(t, inv_freq)
    emb = np.concatenate([freqs, freqs], axis=-1)
    return (Tensor(np.cos(emb).astype(dtype.np_dtype)),
            Tensor(np.sin(emb).astype(dtype.np_dtype)))


@F.traceable
def apply_rotary(x, cos, sin):
    """Rotate pairs of channels by position-dependent angles (RoPE)."""
    x = fw.astensor(x)
    half = x.shape[-1] // 2
    x1 = x[..., :half]
    x2 = x[..., half:]
    rotated = F.cat([-x2, x1], dim=-1)
    seq = x.shape[-2]
    return x * cos[:seq] + rotated * sin[:seq]


class LlamaAttention(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        h, dtype = config.hidden_size, config.dtype
        self.num_heads = config.num_heads
        self.head_dim = config.head_dim
        self.q_proj = fw.Linear(h, h, bias=False, dtype=dtype, device=device)
        self.k_proj = fw.Linear(h, h, bias=False, dtype=dtype, device=device)
        self.v_proj = fw.Linear(h, h, bias=False, dtype=dtype, device=device)
        self.o_proj = fw.Linear(h, h, bias=False, dtype=dtype, device=device)
        cos, sin = _rope_tables(config.max_seq_len, config.head_dim, dtype)
        self.register_buffer("rope_cos", cos)
        self.register_buffer("rope_sin", sin)

    def forward(self, hidden_states):
        q = F.split_heads(self.q_proj(hidden_states), self.num_heads)
        k = F.split_heads(self.k_proj(hidden_states), self.num_heads)
        v = F.split_heads(self.v_proj(hidden_states), self.num_heads)
        cos, sin = self._buffers["rope_cos"], self._buffers["rope_sin"]
        q = apply_rotary(q, cos, sin)
        k = apply_rotary(k, cos, sin)
        scores = q @ k.transpose(-2, -1)
        scores = scores / (self.head_dim ** 0.5)
        scores = F.apply_causal_mask(scores)
        probs = F.softmax(scores, dim=-1)
        context = probs @ v
        return self.o_proj(F.merge_heads(context))


class LlamaMLP(fw.Module):
    """SwiGLU: down(silu(gate(x)) * up(x))."""

    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        h, inter, dtype = (config.hidden_size, config.intermediate_size,
                           config.dtype)
        self.gate_proj = fw.Linear(h, inter, bias=False, dtype=dtype,
                                   device=device)
        self.up_proj = fw.Linear(h, inter, bias=False, dtype=dtype,
                                 device=device)
        self.down_proj = fw.Linear(inter, h, bias=False, dtype=dtype,
                                   device=device)

    def forward(self, x):
        return self.down_proj(F.silu(self.gate_proj(x)) * self.up_proj(x))


class LlamaDecoderLayer(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        h = config.hidden_size
        self.self_attn = LlamaAttention(config, device)
        self.mlp = LlamaMLP(config, device)
        self.input_layernorm = fw.RMSNorm(h, eps=config.layer_norm_eps,
                                          dtype=config.dtype, device=device)
        self.post_attention_layernorm = fw.RMSNorm(
            h, eps=config.layer_norm_eps, dtype=config.dtype, device=device)

    def forward(self, hidden_states):
        hidden_states = hidden_states + self.self_attn(
            self.input_layernorm(hidden_states))
        return hidden_states + self.mlp(
            self.post_attention_layernorm(hidden_states))


class LlamaModel(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.config = config
        self.embed_tokens = fw.Embedding(config.vocab_size,
                                         config.hidden_size,
                                         dtype=config.dtype, device=device)
        self.layers = fw.ModuleList([
            LlamaDecoderLayer(config, device)
            for _ in range(config.num_layers)
        ])
        self.norm = fw.RMSNorm(config.hidden_size, eps=config.layer_norm_eps,
                               dtype=config.dtype, device=device)

    def forward(self, input_ids):
        x = self.embed_tokens(input_ids)
        for layer in self.layers:
            x = layer(x)
        return self.norm(x)


class LlamaForCausalLM(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.config = config
        self.model = LlamaModel(config, device)
        self.lm_head = fw.Linear(config.hidden_size, config.vocab_size,
                                 bias=False, dtype=config.dtype,
                                 device=device)

    def forward(self, input_ids):
        return self.lm_head(self.model(input_ids))
