"""HuggingFace-style T5 (Raffel et al. 2020): encoder-decoder.

Paths mirror ``transformers.T5ForConditionalGeneration``::

    encoder.block.{i}.layer.0.SelfAttention.{q,k,v,o}
    encoder.block.{i}.layer.1.DenseReluDense.{wi,wo}
    decoder.block.{i}.layer.0.SelfAttention / layer.1.EncDecAttention /
    layer.2.DenseReluDense
    shared (tied token embedding), lm_head

Substitution note (DESIGN.md): the original T5 uses learned relative
position *buckets* added to attention logits; we use absolute position
embeddings instead.  The schedule surface (q/k/v/o linears, ReLU MLP,
cross-attention) and the cost structure are unchanged.
"""

from __future__ import annotations

from repro import framework as fw
from repro.framework import functional as F

from .configs import TransformerConfig


class T5Attention(fw.Module):
    def __init__(self, config: TransformerConfig, causal: bool,
                 device: str = "cpu"):
        super().__init__()
        h, dtype = config.hidden_size, config.dtype
        inner = config.attention_dim  # T5-3B projects 1024 → 4096
        self.num_heads = config.num_heads
        self.causal = causal
        self.q = fw.Linear(h, inner, bias=False, dtype=dtype, device=device)
        self.k = fw.Linear(h, inner, bias=False, dtype=dtype, device=device)
        self.v = fw.Linear(h, inner, bias=False, dtype=dtype, device=device)
        self.o = fw.Linear(inner, h, bias=False, dtype=dtype, device=device)

    def forward(self, hidden_states, key_value_states=None):
        source = hidden_states if key_value_states is None \
            else key_value_states
        q = F.split_heads(self.q(hidden_states), self.num_heads)
        k = F.split_heads(self.k(source), self.num_heads)
        v = F.split_heads(self.v(source), self.num_heads)
        scores = q @ k.transpose(-2, -1)  # T5 omits the 1/sqrt(d) scale
        if self.causal and key_value_states is None:
            scores = F.apply_causal_mask(scores)
        probs = F.softmax(scores, dim=-1)
        context = probs @ v
        return self.o(F.merge_heads(context))


class T5DenseReluDense(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.wi = fw.Linear(config.hidden_size, config.intermediate_size,
                            bias=False, dtype=config.dtype, device=device)
        self.wo = fw.Linear(config.intermediate_size, config.hidden_size,
                            bias=False, dtype=config.dtype, device=device)
        self.dropout = fw.Dropout(config.dropout)

    def forward(self, x):
        return self.wo(self.dropout(F.relu(self.wi(x))))


class T5LayerSelfAttention(fw.Module):
    def __init__(self, config: TransformerConfig, causal: bool,
                 device: str = "cpu"):
        super().__init__()
        self.SelfAttention = T5Attention(config, causal, device)
        self.layer_norm = fw.LayerNorm(config.hidden_size,
                                       eps=config.layer_norm_eps,
                                       dtype=config.dtype, device=device)

    def forward(self, x):
        return x + self.SelfAttention(self.layer_norm(x))


class T5LayerCrossAttention(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.EncDecAttention = T5Attention(config, causal=False,
                                           device=device)
        self.layer_norm = fw.LayerNorm(config.hidden_size,
                                       eps=config.layer_norm_eps,
                                       dtype=config.dtype, device=device)

    def forward(self, x, encoder_states):
        return x + self.EncDecAttention(self.layer_norm(x), encoder_states)


class T5LayerFF(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.DenseReluDense = T5DenseReluDense(config, device)
        self.layer_norm = fw.LayerNorm(config.hidden_size,
                                       eps=config.layer_norm_eps,
                                       dtype=config.dtype, device=device)

    def forward(self, x):
        return x + self.DenseReluDense(self.layer_norm(x))


class T5EncoderBlock(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.layer = fw.ModuleList([
            T5LayerSelfAttention(config, causal=False, device=device),
            T5LayerFF(config, device),
        ])

    def forward(self, x):
        x = self.layer[0](x)
        return self.layer[1](x)


class T5DecoderBlock(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.layer = fw.ModuleList([
            T5LayerSelfAttention(config, causal=True, device=device),
            T5LayerCrossAttention(config, device),
            T5LayerFF(config, device),
        ])

    def forward(self, x, encoder_states):
        x = self.layer[0](x)
        x = self.layer[1](x, encoder_states)
        return self.layer[2](x)


class T5Stack(fw.Module):
    def __init__(self, config: TransformerConfig, is_decoder: bool,
                 device: str = "cpu"):
        super().__init__()
        num = config.num_decoder_layers if is_decoder else config.num_layers
        block_cls = T5DecoderBlock if is_decoder else T5EncoderBlock
        self.is_decoder = is_decoder
        self.block = fw.ModuleList([
            block_cls(config, device) for _ in range(num)
        ])
        self.final_layer_norm = fw.LayerNorm(config.hidden_size,
                                             eps=config.layer_norm_eps,
                                             dtype=config.dtype,
                                             device=device)

    def forward(self, x, encoder_states=None):
        for block in self.block:
            x = block(x, encoder_states) if self.is_decoder else block(x)
        return self.final_layer_norm(x)


class T5ForConditionalGeneration(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.config = config
        self.shared = fw.Embedding(config.vocab_size, config.hidden_size,
                                   dtype=config.dtype, device=device)
        self.encoder = T5Stack(config, is_decoder=False, device=device)
        self.decoder = T5Stack(config, is_decoder=True, device=device)
        self.lm_head = fw.Linear(config.hidden_size, config.vocab_size,
                                 bias=False, dtype=config.dtype,
                                 device=device)
        if config.tie_embeddings:
            self.lm_head.weight = self.shared.weight

    def forward(self, input_ids, decoder_input_ids):
        encoder_states = self.encoder(self.shared(input_ids))
        decoded = self.decoder(self.shared(decoder_input_ids),
                               encoder_states)
        return self.lm_head(decoded)
