"""HuggingFace-style BERT (Devlin et al. 2018).

Module paths replicate ``transformers.BertLMHeadModel`` so the paper's
schedules apply verbatim::

    bert.embeddings.word_embeddings
    bert.encoder.layer.{i}.attention.self.{query,key,value}
    bert.encoder.layer.{i}.attention.output.{dense,LayerNorm,dropout}
    bert.encoder.layer.{i}.intermediate.dense
    bert.encoder.layer.{i}.output.{dense,LayerNorm,dropout}
    bert.pooler / cls
"""

from __future__ import annotations

from repro import framework as fw
from repro.framework import functional as F

from .configs import TransformerConfig


class BertSelfAttention(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        h, dtype = config.hidden_size, config.dtype
        self.num_attention_heads = config.num_heads
        self.attention_head_size = config.head_dim
        self.query = fw.Linear(h, h, dtype=dtype, device=device)
        self.key = fw.Linear(h, h, dtype=dtype, device=device)
        self.value = fw.Linear(h, h, dtype=dtype, device=device)
        self.dropout = fw.Dropout(config.dropout)

    def forward(self, hidden_states):
        q = F.split_heads(self.query(hidden_states),
                          self.num_attention_heads)
        k = F.split_heads(self.key(hidden_states), self.num_attention_heads)
        v = F.split_heads(self.value(hidden_states),
                          self.num_attention_heads)
        scores = q @ k.transpose(-2, -1)
        scores = scores / (self.attention_head_size ** 0.5)
        probs = self.dropout(F.softmax(scores, dim=-1))
        context = probs @ v
        return F.merge_heads(context)


class BertSelfOutput(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        h, dtype = config.hidden_size, config.dtype
        self.dense = fw.Linear(h, h, dtype=dtype, device=device)
        self.LayerNorm = fw.LayerNorm(h, eps=config.layer_norm_eps,
                                      dtype=dtype, device=device)
        self.dropout = fw.Dropout(config.dropout)

    def forward(self, hidden_states, input_tensor):
        hidden_states = self.dropout(self.dense(hidden_states))
        return self.LayerNorm(hidden_states + input_tensor)


class BertAttention(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.self = BertSelfAttention(config, device)
        self.output = BertSelfOutput(config, device)

    def forward(self, hidden_states):
        attn = self.self(hidden_states)
        return self.output(attn, hidden_states)


class BertIntermediate(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.dense = fw.Linear(config.hidden_size, config.intermediate_size,
                               dtype=config.dtype, device=device)

    def forward(self, hidden_states):
        return F.gelu(self.dense(hidden_states))


class BertOutput(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.dense = fw.Linear(config.intermediate_size, config.hidden_size,
                               dtype=config.dtype, device=device)
        self.LayerNorm = fw.LayerNorm(config.hidden_size,
                                      eps=config.layer_norm_eps,
                                      dtype=config.dtype, device=device)
        self.dropout = fw.Dropout(config.dropout)

    def forward(self, hidden_states, input_tensor):
        hidden_states = self.dropout(self.dense(hidden_states))
        return self.LayerNorm(hidden_states + input_tensor)


class BertLayer(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.attention = BertAttention(config, device)
        self.intermediate = BertIntermediate(config, device)
        self.output = BertOutput(config, device)

    def forward(self, hidden_states):
        attn_out = self.attention(hidden_states)
        inter = self.intermediate(attn_out)
        return self.output(inter, attn_out)


class BertEmbeddings(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        h, dtype = config.hidden_size, config.dtype
        self.word_embeddings = fw.Embedding(config.vocab_size, h,
                                            dtype=dtype, device=device)
        self.position_embeddings = fw.Embedding(config.max_seq_len, h,
                                                dtype=dtype, device=device)
        self.LayerNorm = fw.LayerNorm(h, eps=config.layer_norm_eps,
                                      dtype=dtype, device=device)
        self.dropout = fw.Dropout(config.dropout)

    def forward(self, input_ids):
        seq_len = input_ids.shape[-1]
        positions = fw.arange(seq_len)
        embeddings = self.word_embeddings(input_ids) \
            + self.position_embeddings(positions)
        return self.dropout(self.LayerNorm(embeddings))


class BertEncoder(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.layer = fw.ModuleList([
            BertLayer(config, device) for _ in range(config.num_layers)
        ])

    def forward(self, hidden_states):
        for layer in self.layer:
            hidden_states = layer(hidden_states)
        return hidden_states


class BertPooler(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.dense = fw.Linear(config.hidden_size, config.hidden_size,
                               dtype=config.dtype, device=device)

    def forward(self, hidden_states):
        return F.tanh(self.dense(hidden_states[:, 0]))


class BertModel(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.config = config
        self.embeddings = BertEmbeddings(config, device)
        self.encoder = BertEncoder(config, device)
        self.pooler = BertPooler(config, device)

    def forward(self, input_ids):
        hidden_states = self.embeddings(input_ids)
        return self.encoder(hidden_states)


class BertLMHead(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.decoder = fw.Linear(config.hidden_size, config.vocab_size,
                                 dtype=config.dtype, device=device)

    def forward(self, hidden_states):
        return self.decoder(hidden_states)


class BertLMHeadModel(fw.Module):
    """Masked-language-modeling BERT (the paper's benchmark task)."""

    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.config = config
        self.bert = BertModel(config, device)
        self.cls = BertLMHead(config, device)
        if config.tie_embeddings:
            self.cls.decoder.weight = \
                self.bert.embeddings.word_embeddings.weight

    def forward(self, input_ids):
        return self.cls(self.bert(input_ids))
