"""Mixture-of-experts GPT: a GPT-2 trunk whose MLPs are top-k gated MoE.

Paths mirror the dense GPT-2 family so schedules transfer::

    transformer.wte / transformer.wpe
    transformer.h.{i}.ln_1 / attn.c_attn / attn.c_proj / ln_2
    transformer.h.{i}.moe.gate / moe.experts.{e}.fc1 / fc2
    lm_head

The attention stack is shared with :mod:`repro.models.gpt` (the schedule
macros address ``attn.c_attn`` / ``attn.c_proj`` identically); only the
feed-forward differs — each block carries a
:class:`~repro.framework.layers.MoEFeedForward` whose experts a schedule
can partition across the mesh's ``ep`` axis with ``shard_experts``.
"""

from __future__ import annotations

from repro import framework as fw
from repro.framework import functional as F

from .configs import MoEConfig
from .gpt import GPT2Attention


class MoEGPTBlock(fw.Module):
    def __init__(self, config: MoEConfig, device: str = "cpu"):
        super().__init__()
        eps, dtype = config.layer_norm_eps, config.dtype
        self.ln_1 = fw.LayerNorm(config.hidden_size, eps=eps, dtype=dtype,
                                 device=device)
        self.attn = GPT2Attention(config, device)
        self.ln_2 = fw.LayerNorm(config.hidden_size, eps=eps, dtype=dtype,
                                 device=device)
        self.moe = fw.MoEFeedForward(
            config.hidden_size, config.intermediate_size,
            num_experts=config.num_experts, top_k=config.top_k,
            capacity_factor=config.capacity_factor, dtype=dtype,
            device=device)

    def forward(self, hidden_states):
        hidden_states = hidden_states + self.attn(self.ln_1(hidden_states))
        # Dropped tokens contribute zero from the expert path and ride
        # this residual through unchanged (Switch Transformer semantics).
        moe_out = self.moe(self.ln_2(hidden_states))
        if self.moe.emit_stats:
            # Routing stats travel the dataflow as a dict — the traced
            # graph indexes the leaf's pytree output, no module scraping.
            return {"hidden_states": hidden_states + moe_out["output"],
                    "dropped": moe_out["dropped"]}
        return hidden_states + moe_out


class MoEGPTModel(fw.Module):
    def __init__(self, config: MoEConfig, device: str = "cpu"):
        super().__init__()
        self.config = config
        h, dtype = config.hidden_size, config.dtype
        self.wte = fw.Embedding(config.vocab_size, h, dtype=dtype,
                                device=device)
        self.wpe = fw.Embedding(config.max_seq_len, h, dtype=dtype,
                                device=device)
        self.drop = fw.Dropout(config.dropout)
        self.h = fw.ModuleList([
            MoEGPTBlock(config, device) for _ in range(config.num_layers)
        ])
        self.ln_f = fw.LayerNorm(h, eps=config.layer_norm_eps, dtype=dtype,
                                 device=device)

    def forward(self, input_ids):
        positions = F.position_ids(input_ids)
        x = self.drop(self.wte(input_ids) + self.wpe(positions))
        dropped = ()
        for block in self.h:
            out = block(x)
            if isinstance(out, dict):
                x = out["hidden_states"]
                dropped = (*dropped, out["dropped"])
            else:
                x = out
        x = self.ln_f(x)
        if dropped:
            return {"hidden_states": x,
                    "routing": {"dropped_per_layer": dropped}}
        return x


class MoEGPTLMHeadModel(fw.Module):
    def __init__(self, config: MoEConfig, device: str = "cpu"):
        super().__init__()
        self.config = config
        self.transformer = MoEGPTModel(config, device)
        self.lm_head = fw.Linear(config.hidden_size, config.vocab_size,
                                 bias=False, dtype=config.dtype,
                                 device=device)
        if config.tie_embeddings:
            self.lm_head.weight = self.transformer.wte.weight

    def forward(self, input_ids):
        out = self.transformer(input_ids)
        if isinstance(out, dict):
            return {"logits": self.lm_head(out["hidden_states"]),
                    "routing": out["routing"]}
        return self.lm_head(out)
