"""RoBERTa (Liu et al. 2019): BERT's architecture, retrained.

HuggingFace's RoBERTa implementation mirrors BERT module-for-module with a
``roberta.`` prefix — which is exactly why the paper's Table 4 reports that
BERT's 21-line schedule transfers to RoBERTa unchanged.  We reuse the BERT
building blocks under the RoBERTa path names.
"""

from __future__ import annotations

from repro import framework as fw

from .bert import BertLMHead, BertModel
from .configs import TransformerConfig


class RobertaModel(BertModel):
    """Same structure; HF keeps a distinct class."""


class RobertaLMHeadModel(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.config = config
        self.roberta = RobertaModel(config, device)
        self.lm_head = BertLMHead(config, device)
        if config.tie_embeddings:
            self.lm_head.decoder.weight = \
                self.roberta.embeddings.word_embeddings.weight

    def forward(self, input_ids):
        return self.lm_head(self.roberta(input_ids))
