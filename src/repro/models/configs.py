"""Model configurations (paper Table 3 plus multi-node and tuning models).

Sizes are chosen so total parameter counts land on the paper's reported
billions (checked by ``tests/models/test_configs_table3.py``); vocabulary
sizes follow the original HuggingFace checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.framework import dtype as dtypes
from repro.framework.dtype import DType


@dataclass(frozen=True)
class TransformerConfig:
    """Shared hyper-parameters for the Transformer family."""

    name: str
    vocab_size: int
    hidden_size: int
    num_layers: int
    num_heads: int
    intermediate_size: int
    max_seq_len: int
    dtype: DType = dtypes.float16
    dropout: float = 0.1
    layer_norm_eps: float = 1e-5
    #: decoder models apply a causal mask
    causal: bool = False
    #: T5-style models have a decoder stack of this many layers
    num_decoder_layers: int = 0
    #: attention inner width (T5-3B projects 1024 → 4096); None = hidden
    kv_dim: int | None = None
    #: share the LM head with the token embedding (HF default for
    #: BERT/RoBERTa/GPT-2/OPT/T5; LLaMA keeps them separate)
    tie_embeddings: bool = True

    @property
    def attention_dim(self) -> int:
        return self.kv_dim or self.hidden_size

    @property
    def head_dim(self) -> int:
        return self.attention_dim // self.num_heads

    def tiny(self, **overrides) -> "TransformerConfig":
        """A functional-test-sized variant of this architecture."""
        defaults = {
            "name": f"{self.name}-tiny",
            "vocab_size": 64,
            "hidden_size": 16,
            "num_layers": 2,
            "num_heads": 2,
            "intermediate_size": 32,
            "max_seq_len": 16,
            "dtype": dtypes.float32,
            "dropout": 0.0,
        }
        if self.num_decoder_layers:
            defaults["num_decoder_layers"] = 2
        defaults.update(overrides)
        return replace(self, **defaults)


@dataclass(frozen=True)
class ResNetConfig:
    """WideResNet configuration (bottleneck ResNet with widened channels)."""

    name: str
    layers: tuple[int, int, int, int]
    width_per_group: int
    num_classes: int = 1000
    image_size: int = 224
    dtype: DType = dtypes.float32

    def tiny(self) -> "ResNetConfig":
        return ResNetConfig(name=f"{self.name}-tiny", layers=(1, 1, 1, 1),
                            width_per_group=16, num_classes=10,
                            image_size=32, dtype=dtypes.float32)


# --------------------------------------------------------------------- #
# Table 3: single-node evaluation models
# --------------------------------------------------------------------- #
# Vocabulary sizes are padded to multiples of 1024 (Megatron's
# make-vocab-divisible convention) so embeddings shard across 8 GPUs.
BERT_1B = TransformerConfig(
    name="bert-0.96b", vocab_size=30720, hidden_size=1792, num_layers=24,
    num_heads=32, intermediate_size=7168, max_seq_len=512)

ROBERTA_1_3B = TransformerConfig(
    name="roberta-1.3b", vocab_size=50304, hidden_size=2048, num_layers=24,
    num_heads=32, intermediate_size=8192, max_seq_len=512)

GPT_2_9B = TransformerConfig(
    name="gpt-2.9b", vocab_size=50304, hidden_size=2560, num_layers=36,
    num_heads=32, intermediate_size=10240, max_seq_len=1024, causal=True)

OPT_2_7B = TransformerConfig(
    name="opt-2.7b", vocab_size=50272, hidden_size=2560, num_layers=32,
    num_heads=32, intermediate_size=10240, max_seq_len=1024, causal=True)

T5_2_9B = TransformerConfig(
    name="t5-2.9b", vocab_size=32128, hidden_size=1024, num_layers=24,
    num_heads=32, intermediate_size=16384, max_seq_len=1024,
    num_decoder_layers=24, kv_dim=4096)

WIDERESNET_2_4B = ResNetConfig(
    name="wideresnet-2.4b", layers=(3, 4, 23, 3), width_per_group=480)

# --------------------------------------------------------------------- #
# Multi-node evaluation models (paper §5.2)
# --------------------------------------------------------------------- #
GPT_10B = TransformerConfig(
    name="gpt-10b", vocab_size=50304, hidden_size=4096, num_layers=48,
    num_heads=32, intermediate_size=16384, max_seq_len=1024, causal=True)

LLAMA_7B = TransformerConfig(
    name="llama-7b", vocab_size=32000, hidden_size=4096, num_layers=32,
    num_heads=32, intermediate_size=11008, max_seq_len=1024, causal=True,
    layer_norm_eps=1e-6, tie_embeddings=False)

@dataclass(frozen=True)
class MoEConfig(TransformerConfig):
    """Transformer with mixture-of-experts feed-forward layers.

    ``intermediate_size`` is the *per-expert* FFN width.  Every decoder
    block's MLP is a top-k gated :class:`~repro.framework.layers
    .MoEFeedForward`; tokens above an expert's capacity
    (``capacity_factor · seq · top_k / num_experts`` per sample) are
    dropped and ride the residual connection.
    """

    num_experts: int = 8
    top_k: int = 2
    capacity_factor: float = 1.25

    def tiny(self, **overrides) -> "MoEConfig":
        defaults = {"num_experts": 4}
        defaults.update(overrides)
        return super().tiny(**defaults)


# --------------------------------------------------------------------- #
# Mixture-of-experts study model (GShard/Switch-style GPT)
# --------------------------------------------------------------------- #
# Dense GPT-350M-scale trunk; 8 experts make the FFN parameters dominate,
# which is what makes the expert-parallel axis worth searching.
MOE_GPT_8E = MoEConfig(
    name="moe-gpt-8e", vocab_size=50304, hidden_size=1024, num_layers=12,
    num_heads=16, intermediate_size=4096, max_seq_len=1024, causal=True,
    num_experts=8, top_k=2, capacity_factor=1.25)


# --------------------------------------------------------------------- #
# Auto-tuning study model (paper §5.4)
# --------------------------------------------------------------------- #
OPT_350M = TransformerConfig(
    name="opt-350m", vocab_size=50272, hidden_size=1024, num_layers=24,
    num_heads=16, intermediate_size=4096, max_seq_len=1024, causal=True)


TABLE3_CONFIGS = {
    "BERT": BERT_1B,
    "RoBERTa": ROBERTA_1_3B,
    "GPT": GPT_2_9B,
    "OPT": OPT_2_7B,
    "T5": T5_2_9B,
    "WideResNet": WIDERESNET_2_4B,
}

#: parameter counts the paper reports (billions)
TABLE3_PARAMS_BILLION = {
    "BERT": 0.96,
    "RoBERTa": 1.3,
    "GPT": 2.86,
    "OPT": 2.69,
    "T5": 2.85,
    "WideResNet": 2.4,
}
