"""Synthetic workload generators.

The paper trains on standard corpora but measures *throughput*, which
depends only on tensor shapes — synthetic batches of the right shape and
vocabulary exercise the identical code path (the ``repro_why`` substitution
for the data dependency).
"""

from __future__ import annotations

from repro import framework as fw
from repro.framework.tensor import Tensor

from .configs import ResNetConfig, TransformerConfig


def lm_batch(config: TransformerConfig, batch_size: int,
             seq_len: int | None = None, device: str = "cpu"
             ) -> tuple[Tensor, Tensor]:
    """(input_ids, labels) for MLM/CLM training."""
    seq_len = seq_len or config.max_seq_len
    if device == "meta":
        ids = Tensor.meta((batch_size, seq_len), fw.int64)
        labels = Tensor.meta((batch_size * seq_len,), fw.int64)
        return ids, labels
    ids = fw.randint(0, config.vocab_size, (batch_size, seq_len))
    labels = fw.randint(0, config.vocab_size, (batch_size * seq_len,))
    return ids, labels


def seq2seq_batch(config: TransformerConfig, batch_size: int,
                  src_len: int | None = None, tgt_len: int | None = None,
                  device: str = "cpu") -> tuple[Tensor, Tensor, Tensor]:
    """(input_ids, decoder_input_ids, labels) for T5-style training.

    The paper uses 1024/512 source/target lengths for T5 (Table 3).
    """
    src_len = src_len or config.max_seq_len
    tgt_len = tgt_len or max(config.max_seq_len // 2, 1)
    if device == "meta":
        return (Tensor.meta((batch_size, src_len), fw.int64),
                Tensor.meta((batch_size, tgt_len), fw.int64),
                Tensor.meta((batch_size * tgt_len,), fw.int64))
    return (fw.randint(0, config.vocab_size, (batch_size, src_len)),
            fw.randint(0, config.vocab_size, (batch_size, tgt_len)),
            fw.randint(0, config.vocab_size, (batch_size * tgt_len,)))


def image_batch(config: ResNetConfig, batch_size: int, device: str = "cpu"
                ) -> tuple[Tensor, Tensor]:
    """(images, labels) for image classification."""
    shape = (batch_size, 3, config.image_size, config.image_size)
    if device == "meta":
        return (Tensor.meta(shape, config.dtype),
                Tensor.meta((batch_size,), fw.int64))
    return (fw.randn(*shape, dtype=config.dtype),
            fw.randint(0, config.num_classes, (batch_size,)))
