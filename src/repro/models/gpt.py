"""HuggingFace-style GPT-2 (Radford et al. 2019): decoder-only, causal.

Paths mirror ``transformers.GPT2LMHeadModel``::

    transformer.wte / transformer.wpe
    transformer.h.{i}.ln_1 / attn.c_attn / attn.c_proj / ln_2 / mlp.c_fc /
    mlp.c_proj
    lm_head

GPT-2 already fuses QKV into one ``c_attn`` projection — one reason the
paper's GPT schedule is shorter than BERT's (Table 4: 10 vs 21 LoC).
"""

from __future__ import annotations

from repro import framework as fw
from repro.framework import functional as F

from .configs import TransformerConfig


class GPT2Attention(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        h, dtype = config.hidden_size, config.dtype
        self.num_heads = config.num_heads
        self.head_dim = config.head_dim
        self.c_attn = fw.Linear(h, 3 * h, dtype=dtype, device=device)
        self.c_proj = fw.Linear(h, h, dtype=dtype, device=device)
        self.attn_dropout = fw.Dropout(config.dropout)
        self.resid_dropout = fw.Dropout(config.dropout)
        self.hidden_size = h

    def forward(self, hidden_states):
        qkv = self.c_attn(hidden_states)
        h = self.hidden_size
        q = F.split_heads(qkv[..., :h], self.num_heads)
        k = F.split_heads(qkv[..., h:2 * h], self.num_heads)
        v = F.split_heads(qkv[..., 2 * h:], self.num_heads)
        # HF-vintage attention: the (s × s) matrix materialises; schedules
        # replace this core with flash attention.
        scores = q @ k.transpose(-2, -1)
        scores = scores / (self.head_dim ** 0.5)
        scores = F.apply_causal_mask(scores)
        probs = self.attn_dropout(F.softmax(scores, dim=-1))
        context = probs @ v
        out = self.c_proj(F.merge_heads(context))
        return self.resid_dropout(out)


class GPT2MLP(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.c_fc = fw.Linear(config.hidden_size, config.intermediate_size,
                              dtype=config.dtype, device=device)
        self.c_proj = fw.Linear(config.intermediate_size, config.hidden_size,
                                dtype=config.dtype, device=device)
        self.dropout = fw.Dropout(config.dropout)

    def forward(self, hidden_states):
        return self.dropout(self.c_proj(F.gelu(self.c_fc(hidden_states))))


class GPT2Block(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        eps, dtype = config.layer_norm_eps, config.dtype
        self.ln_1 = fw.LayerNorm(config.hidden_size, eps=eps, dtype=dtype,
                                 device=device)
        self.attn = GPT2Attention(config, device)
        self.ln_2 = fw.LayerNorm(config.hidden_size, eps=eps, dtype=dtype,
                                 device=device)
        self.mlp = GPT2MLP(config, device)

    def forward(self, hidden_states):
        hidden_states = hidden_states + self.attn(self.ln_1(hidden_states))
        return hidden_states + self.mlp(self.ln_2(hidden_states))


class GPT2Model(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.config = config
        h, dtype = config.hidden_size, config.dtype
        self.wte = fw.Embedding(config.vocab_size, h, dtype=dtype,
                                device=device)
        self.wpe = fw.Embedding(config.max_seq_len, h, dtype=dtype,
                                device=device)
        self.drop = fw.Dropout(config.dropout)
        self.h = fw.ModuleList([
            GPT2Block(config, device) for _ in range(config.num_layers)
        ])
        self.ln_f = fw.LayerNorm(h, eps=config.layer_norm_eps, dtype=dtype,
                                 device=device)

    def forward(self, input_ids):
        positions = F.position_ids(input_ids)
        x = self.drop(self.wte(input_ids) + self.wpe(positions))
        for block in self.h:
            x = block(x)
        return self.ln_f(x)


class GPT2LMHeadModel(fw.Module):
    def __init__(self, config: TransformerConfig, device: str = "cpu"):
        super().__init__()
        self.config = config
        self.transformer = GPT2Model(config, device)
        self.lm_head = fw.Linear(config.hidden_size, config.vocab_size,
                                 bias=False, dtype=config.dtype,
                                 device=device)
        if config.tie_embeddings:
            self.lm_head.weight = self.transformer.wte.weight

    def forward(self, input_ids):
        return self.lm_head(self.transformer(input_ids))
