"""repro.models — HuggingFace/torchvision-style model zoo (paper Table 3)."""

from . import data
from .bert import BertLMHeadModel, BertModel
from .configs import (
    BERT_1B,
    GPT_2_9B,
    GPT_10B,
    LLAMA_7B,
    MOE_GPT_8E,
    OPT_2_7B,
    OPT_350M,
    ROBERTA_1_3B,
    T5_2_9B,
    TABLE3_CONFIGS,
    TABLE3_PARAMS_BILLION,
    WIDERESNET_2_4B,
    MoEConfig,
    ResNetConfig,
    TransformerConfig,
)
from .gpt import GPT2LMHeadModel, GPT2Model
from .moe_gpt import MoEGPTLMHeadModel, MoEGPTModel
from .llama import LlamaForCausalLM, LlamaModel
from .opt import OPTForCausalLM, OPTModel
from .roberta import RobertaLMHeadModel, RobertaModel
from .t5 import T5ForConditionalGeneration
from .wideresnet import WideResNet

#: model family name → (constructor, paper config)
MODEL_ZOO = {
    "BERT": (BertLMHeadModel, BERT_1B),
    "RoBERTa": (RobertaLMHeadModel, ROBERTA_1_3B),
    "GPT": (GPT2LMHeadModel, GPT_2_9B),
    "OPT": (OPTForCausalLM, OPT_2_7B),
    "T5": (T5ForConditionalGeneration, T5_2_9B),
    "WideResNet": (WideResNet, WIDERESNET_2_4B),
    "GPT-10B": (GPT2LMHeadModel, GPT_10B),
    "LLaMA-7B": (LlamaForCausalLM, LLAMA_7B),
    "OPT-350M": (OPTForCausalLM, OPT_350M),
    "MoE-GPT": (MoEGPTLMHeadModel, MOE_GPT_8E),
}

__all__ = [
    "BertModel", "BertLMHeadModel", "RobertaModel", "RobertaLMHeadModel",
    "GPT2Model", "GPT2LMHeadModel", "OPTModel", "OPTForCausalLM",
    "T5ForConditionalGeneration", "LlamaModel", "LlamaForCausalLM",
    "WideResNet", "MoEGPTModel", "MoEGPTLMHeadModel",
    "TransformerConfig", "ResNetConfig", "MoEConfig",
    "BERT_1B", "ROBERTA_1_3B", "GPT_2_9B", "OPT_2_7B", "T5_2_9B",
    "WIDERESNET_2_4B", "GPT_10B", "LLAMA_7B", "OPT_350M", "MOE_GPT_8E",
    "TABLE3_CONFIGS", "TABLE3_PARAMS_BILLION", "MODEL_ZOO",
    "data",
]
