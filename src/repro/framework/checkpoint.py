"""Activation checkpointing (Chen et al. 2016): trade compute for memory.

``checkpoint_run(fn, *args)`` executes ``fn`` under ``no_grad`` — so none of
its intermediate activations are retained — and registers a tape node that
*re-runs* ``fn`` with gradients enabled during the backward pass.  The RNG
state is snapshotted and replayed so stochastic layers (dropout) produce
identical masks in the recomputation, preserving exact gradients.
"""

from __future__ import annotations

from . import autograd, events, random as frandom
from .autograd import GradNode
from .tensor import Tensor


def checkpoint_run(fn, *args, **kwargs):
    """Run ``fn(*args)`` without storing intermediate activations."""
    tensor_args = [a for a in args if isinstance(a, Tensor)]
    if any(t.is_meta for t in tensor_args):
        # Meta execution: no tape exists; just mark the region for the
        # simulator (it accounts recompute time + boundary-only activations).
        with events.checkpoint_region():
            return fn(*args, **kwargs)
    if not autograd.is_grad_enabled():
        return fn(*args, **kwargs)

    rng_state = frandom.get_rng_state()
    detached = [a.detach() if isinstance(a, Tensor) else a for a in args]
    with autograd.no_grad():
        with events.checkpoint_region():
            output = fn(*detached, **kwargs)
    if not isinstance(output, Tensor):
        raise TypeError(
            "checkpointed functions must return a single tensor "
            f"(got {type(output).__name__})"
        )

    needs_grad = [
        isinstance(a, Tensor) and (a.requires_grad or a.grad_fn is not None)
        for a in args
    ]
    if not any(needs_grad):
        # Still recompute-on-backward for parameter gradients.
        pass

    def backward(grad):
        resume_state = frandom.get_rng_state()
        frandom.set_rng_state(rng_state)
        replay_args = []
        for arg, needs in zip(args, needs_grad):
            if isinstance(arg, Tensor):
                replay = arg.detach()
                replay.requires_grad = needs and arg.dtype.is_floating
                replay_args.append(replay)
            else:
                replay_args.append(arg)
        with autograd.enable_grad():
            recomputed = fn(*replay_args, **kwargs)
        autograd.backward(recomputed, grad)
        frandom.set_rng_state(resume_state)
        grads = []
        for arg, replay in zip(args, replay_args):
            if isinstance(arg, Tensor) and isinstance(replay, Tensor) \
                    and replay.grad is not None:
                grads.append(replay.grad.data)
            else:
                grads.append(None)
        return tuple(grads)

    node_inputs = tuple(a if isinstance(a, Tensor) else None for a in args)
    result = Tensor(output.data, dtype=output.dtype)
    result.grad_fn = GradNode("checkpoint", node_inputs, backward)
    result.requires_grad = True
    return result
