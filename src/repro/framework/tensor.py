"""The framework tensor: numpy storage, autograd hooks, and a meta device.

A tensor lives on one of two devices:

* ``"cpu"`` — backed by a real ``numpy.ndarray``; supports autograd.
* ``"meta"`` — shape/dtype only, no storage.  Billion-parameter models are
  instantiated on meta so the performance simulator can walk their structure
  without allocating memory (mirrors ``torch.device("meta")``).

Arithmetic and method calls defer to :mod:`repro.framework.functional`, which
centralises shape inference, autograd, and simulator event reporting.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from . import autograd, dtype as dtypes
from .dtype import DType


def _normalize_shape(shape) -> tuple[int, ...]:
    if isinstance(shape, (int, np.integer)):
        return (int(shape),)
    return tuple(int(s) for s in shape)


class Size(tuple):
    """Shape tuple with ``numel``, mirroring ``torch.Size``."""

    def numel(self) -> int:
        out = 1
        for s in self:
            out *= s
        return out


class Tensor:
    """An n-dimensional array with optional autograd tracking."""

    # Make numpy defer binary ops (np_array * tensor) to Tensor.__rmul__.
    __array_priority__ = 1000

    def __init__(self, data, dtype: DType | None = None, requires_grad: bool = False,
                 device: str = "cpu"):
        if device == "meta":
            raise ValueError("use Tensor.meta(shape, dtype) for meta tensors")
        if isinstance(data, Tensor):
            data = data.data
        array = np.asarray(data)
        if dtype is not None:
            array = array.astype(dtype.np_dtype, copy=False)
        elif array.dtype == np.float64:
            # Match torch's default of 32-bit floats for Python literals.
            array = array.astype(np.float32)
        self.data: np.ndarray | None = array
        self._meta_shape: tuple[int, ...] | None = None
        self._dtype = DType.from_numpy(array.dtype)
        self.device = "cpu"
        self.requires_grad = bool(requires_grad) and self._dtype.is_floating
        self.grad: Tensor | None = None
        self.grad_fn: autograd.GradNode | None = None

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def meta(shape, dtype: DType = dtypes.float32,
             requires_grad: bool = False) -> "Tensor":
        """Create a storage-less tensor carrying only shape and dtype."""
        t = Tensor.__new__(Tensor)
        t.data = None
        t._meta_shape = _normalize_shape(shape)
        t._dtype = dtype
        t.device = "meta"
        t.requires_grad = bool(requires_grad) and dtype.is_floating
        t.grad = None
        t.grad_fn = None
        return t

    @staticmethod
    def from_numpy(array: np.ndarray) -> "Tensor":
        return Tensor(array)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def is_meta(self) -> bool:
        return self.device == "meta"

    @property
    def shape(self) -> Size:
        if self.is_meta:
            return Size(self._meta_shape)
        return Size(self.data.shape)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def dtype(self) -> DType:
        return self._dtype

    @property
    def is_leaf(self) -> bool:
        return self.grad_fn is None

    @property
    def nbytes(self) -> int:
        return self.numel() * self._dtype.itemsize

    def numel(self) -> int:
        return self.shape.numel()

    def size(self, dim: int | None = None):
        if dim is None:
            return self.shape
        return self.shape[dim]

    def dim(self) -> int:
        return self.ndim

    def item(self):
        if self.is_meta:
            raise RuntimeError("cannot call item() on a meta tensor")
        return self.data.item()

    def numpy(self) -> np.ndarray:
        if self.is_meta:
            raise RuntimeError("cannot export a meta tensor to numpy")
        return self.data

    def tolist(self):
        return self.numpy().tolist()

    def __len__(self) -> int:
        if self.ndim == 0:
            raise TypeError("len() of a 0-d tensor")
        return self.shape[0]

    def __repr__(self) -> str:
        if self.is_meta:
            return f"Tensor(meta, shape={tuple(self.shape)}, dtype={self.dtype.name})"
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad})"

    def __bool__(self) -> bool:
        if self.is_meta:
            raise RuntimeError("bool() on a meta tensor is data-dependent")
        if self.data.size != 1:
            raise RuntimeError("bool() of a multi-element tensor is ambiguous")
        return bool(self.data)

    # ------------------------------------------------------------------ #
    # Autograd
    # ------------------------------------------------------------------ #
    def backward(self, grad=None) -> None:
        autograd.backward(self, grad)

    def detach(self) -> "Tensor":
        if self.is_meta:
            return Tensor.meta(self.shape, self.dtype)
        out = Tensor(self.data)
        out._dtype = self._dtype
        return out

    def requires_grad_(self, flag: bool = True) -> "Tensor":
        if flag and not self._dtype.is_floating:
            raise RuntimeError("only floating-point tensors can require grad")
        self.requires_grad = flag
        return self

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate_grad(self, grad_array: np.ndarray) -> None:
        grad_array = autograd.unbroadcast(np.asarray(grad_array), tuple(self.shape))
        if self.grad is None:
            acc = grad_array.astype(self._dtype.np_dtype, copy=True)
            self.grad = Tensor(acc, dtype=self._dtype)
        else:
            self.grad.data += grad_array

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def to(self, dtype: DType) -> "Tensor":
        from . import functional as F

        return F.cast(self, dtype)

    def float(self) -> "Tensor":
        return self.to(dtypes.float32)

    def half(self) -> "Tensor":
        return self.to(dtypes.float16)

    def clone(self) -> "Tensor":
        if self.is_meta:
            return Tensor.meta(self.shape, self.dtype, self.requires_grad)
        from . import functional as F

        return F.clone(self)

    def copy_(self, other: "Tensor") -> "Tensor":
        """In-place copy of values (no autograd), used by optimizers/sharding."""
        if self.is_meta or other.is_meta:
            raise RuntimeError("copy_ is not supported on meta tensors")
        self.data[...] = other.data.astype(self._dtype.np_dtype, copy=False)
        return self

    # ------------------------------------------------------------------ #
    # Operator sugar — all defer to functional
    # ------------------------------------------------------------------ #
    def __add__(self, other):
        from . import functional as F

        return F.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from . import functional as F

        return F.sub(self, other)

    def __rsub__(self, other):
        from . import functional as F

        return F.sub(other, self)

    def __mul__(self, other):
        from . import functional as F

        return F.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from . import functional as F

        return F.div(self, other)

    def __rtruediv__(self, other):
        from . import functional as F

        return F.div(other, self)

    def __matmul__(self, other):
        from . import functional as F

        return F.matmul(self, other)

    def __neg__(self):
        from . import functional as F

        return F.neg(self)

    def __pow__(self, exponent):
        from . import functional as F

        return F.pow(self, exponent)

    def __getitem__(self, index):
        from . import functional as F

        return F.getitem(self, index)

    def __eq__(self, other):
        from . import functional as F

        return F.eq(self, other)

    def __ne__(self, other):
        from . import functional as F

        return F.ne(self, other)

    def __lt__(self, other):
        from . import functional as F

        return F.lt(self, other)

    def __gt__(self, other):
        from . import functional as F

        return F.gt(self, other)

    def __hash__(self) -> int:
        return id(self)

    # ------------------------------------------------------------------ #
    # Method-style ops used by model code
    # ------------------------------------------------------------------ #
    def matmul(self, other):
        return self.__matmul__(other)

    def view(self, *shape):
        from . import functional as F

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return F.reshape(self, shape)

    reshape = view

    def flatten(self, start_dim: int = 0, end_dim: int = -1):
        from . import functional as F

        return F.flatten(self, start_dim, end_dim)

    def transpose(self, dim0: int, dim1: int):
        from . import functional as F

        return F.transpose(self, dim0, dim1)

    @property
    def T(self):
        from . import functional as F

        return F.transpose(self, -2, -1)

    def permute(self, *dims):
        from . import functional as F

        if len(dims) == 1 and isinstance(dims[0], (tuple, list)):
            dims = tuple(dims[0])
        return F.permute(self, dims)

    def contiguous(self):
        return self

    def split(self, split_size, dim: int = 0):
        from . import functional as F

        return F.split(self, split_size, dim)

    def chunk(self, chunks: int, dim: int = 0):
        from . import functional as F

        return F.chunk(self, chunks, dim)

    def unsqueeze(self, dim: int):
        from . import functional as F

        return F.unsqueeze(self, dim)

    def squeeze(self, dim: int):
        from . import functional as F

        return F.squeeze(self, dim)

    def expand(self, *shape):
        from . import functional as F

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return F.expand(self, shape)

    def sum(self, dim=None, keepdim: bool = False):
        from . import functional as F

        return F.sum(self, dim, keepdim)

    def mean(self, dim=None, keepdim: bool = False):
        from . import functional as F

        return F.mean(self, dim, keepdim)

    def max(self, dim=None, keepdim: bool = False):
        from . import functional as F

        return F.max(self, dim, keepdim)

    def argmax(self, dim=None):
        from . import functional as F

        return F.argmax(self, dim)

    def exp(self):
        from . import functional as F

        return F.exp(self)

    def sqrt(self):
        from . import functional as F

        return F.sqrt(self)

    def tanh(self):
        from . import functional as F

        return F.tanh(self)

    def masked_fill(self, mask, value):
        from . import functional as F

        return F.masked_fill(self, mask, value)


def astensor(value, dtype: DType | None = None) -> Tensor:
    """Coerce scalars/arrays/tensors into a Tensor."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=dtype)


# ---------------------------------------------------------------------- #
# Factory functions (torch-like module-level constructors)
# ---------------------------------------------------------------------- #
def tensor(data, dtype: DType | None = None, requires_grad: bool = False) -> Tensor:
    return Tensor(data, dtype=dtype, requires_grad=requires_grad)


def zeros(*shape, dtype: DType = dtypes.float32, device: str = "cpu",
          requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list, Size)):
        shape = tuple(shape[0])
    if device == "meta":
        return Tensor.meta(shape, dtype, requires_grad)
    return Tensor(np.zeros(shape, dtype.np_dtype), requires_grad=requires_grad)


def ones(*shape, dtype: DType = dtypes.float32, device: str = "cpu",
         requires_grad: bool = False) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list, Size)):
        shape = tuple(shape[0])
    if device == "meta":
        return Tensor.meta(shape, dtype, requires_grad)
    return Tensor(np.ones(shape, dtype.np_dtype), requires_grad=requires_grad)


def full(shape, fill_value, dtype: DType = dtypes.float32) -> Tensor:
    return Tensor(np.full(_normalize_shape(shape), fill_value, dtype.np_dtype))


def arange(*args, dtype: DType = dtypes.int64) -> Tensor:
    return Tensor(np.arange(*args), dtype=dtype)


def randn(*shape, dtype: DType = dtypes.float32, device: str = "cpu",
          requires_grad: bool = False) -> Tensor:
    from . import random as frandom

    if len(shape) == 1 and isinstance(shape[0], (tuple, list, Size)):
        shape = tuple(shape[0])
    if device == "meta":
        return Tensor.meta(shape, dtype, requires_grad)
    data = frandom.generator().standard_normal(shape).astype(dtype.np_dtype)
    return Tensor(data, requires_grad=requires_grad)


def rand(*shape, dtype: DType = dtypes.float32) -> Tensor:
    from . import random as frandom

    if len(shape) == 1 and isinstance(shape[0], (tuple, list, Size)):
        shape = tuple(shape[0])
    data = frandom.generator().random(shape).astype(dtype.np_dtype)
    return Tensor(data)


def randint(low: int, high: int, shape, dtype: DType = dtypes.int64) -> Tensor:
    from . import random as frandom

    data = frandom.generator().integers(low, high, _normalize_shape(shape))
    return Tensor(data, dtype=dtype)


def zeros_like(t: Tensor) -> Tensor:
    return zeros(tuple(t.shape), dtype=t.dtype,
                 device="meta" if t.is_meta else "cpu")


def ones_like(t: Tensor) -> Tensor:
    return ones(tuple(t.shape), dtype=t.dtype,
                device="meta" if t.is_meta else "cpu")


def allclose(a: Tensor, b: Tensor, rtol: float = 1e-5, atol: float = 1e-6) -> bool:
    return np.allclose(a.numpy(), b.numpy(), rtol=rtol, atol=atol)
