"""The module system: hierarchical containers for parameters and submodules.

Mirrors the parts of ``torch.nn.Module`` that Slapo's schedule language
depends on: attribute-based registration, dotted-path lookup
(``get_submodule``), named traversal, hot-swapping children
(``set_submodule`` — used by ``.replace()``), state dicts, train/eval mode,
and forward/backward hooks (used by ``.sync()`` to inject collectives).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator

from . import autograd
from . import events as fw_events
from .parameter import Parameter
from .tensor import Tensor


class Module:
    """Base class for all neural-network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)
        object.__setattr__(self, "_forward_pre_hooks", [])
        object.__setattr__(self, "_forward_hooks", [])
        object.__setattr__(self, "_backward_hooks", [])
        # Annotations consumed by the simulator / pipeline partitioner.
        object.__setattr__(self, "_slapo_meta", {})

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.pop(name, None)
            self._modules.pop(name, None)
            self._buffers.pop(name, None)
            self._parameters[name] = value
        elif isinstance(value, Module):
            self.__dict__.pop(name, None)
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
            self._modules[name] = value
        else:
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
            object.__setattr__(self, name, value)

    def __getattr__(self, name: str):
        # Only called when normal lookup fails.
        for store in ("_parameters", "_buffers"):
            registry = self.__dict__.get(store)
            if registry is not None and name in registry:
                value = registry[name]
                proxy = _maybe_trace_get_attr(self, name, value)
                return value if proxy is None else proxy
        modules = self.__dict__.get("_modules")
        if modules is not None and name in modules:
            return modules[name]
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def __delattr__(self, name: str) -> None:
        for store in (self._parameters, self._buffers, self._modules):
            if name in store:
                del store[name]
                return
        object.__delattr__(self, name)

    def register_buffer(self, name: str, tensor: Tensor | None) -> None:
        """Register a non-learnable tensor (e.g. running statistics)."""
        self._buffers[name] = tensor

    def register_parameter(self, name: str, param: Parameter | None) -> None:
        self._parameters[name] = param

    def add_module(self, name: str, module: "Module | None") -> None:
        self._modules[name] = module

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def children(self) -> Iterator["Module"]:
        for module in self._modules.values():
            if module is not None:
                yield module

    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        for name, module in self._modules.items():
            if module is not None:
                yield name, module

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, module in self._modules.items():
            if module is None:
                continue
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(child_prefix)

    def parameters(self, recurse: bool = True) -> Iterator[Parameter]:
        for _, param in self.named_parameters(recurse=recurse):
            yield param

    def named_parameters(self, prefix: str = "", recurse: bool = True
                         ) -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            if param is not None:
                yield (f"{prefix}.{name}" if prefix else name), param
        if recurse:
            for name, module in self._modules.items():
                if module is None:
                    continue
                child_prefix = f"{prefix}.{name}" if prefix else name
                yield from module.named_parameters(child_prefix, recurse=True)

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, buf in self._buffers.items():
            if buf is not None:
                yield (f"{prefix}.{name}" if prefix else name), buf
        for name, module in self._modules.items():
            if module is None:
                continue
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_buffers(child_prefix)

    def get_submodule(self, target: str) -> "Module":
        """Resolve a dotted path like ``encoder.layer.0.attention``."""
        if target == "":
            return self
        module: Module = self
        for atom in target.split("."):
            if atom not in module._modules or module._modules[atom] is None:
                raise AttributeError(
                    f"{type(module).__name__} has no submodule {atom!r} "
                    f"(resolving {target!r})"
                )
            module = module._modules[atom]
        return module

    def set_submodule(self, target: str, new_module: "Module") -> None:
        """Replace the submodule at a dotted path (used by ``.replace()``)."""
        if "." in target:
            parent_path, _, leaf = target.rpartition(".")
            parent = self.get_submodule(parent_path)
        else:
            parent, leaf = self, target
        if leaf not in parent._modules:
            raise AttributeError(
                f"{type(parent).__name__} has no submodule {leaf!r}"
            )
        parent._modules[leaf] = new_module

    def get_parameter(self, target: str) -> Parameter:
        module_path, _, name = target.rpartition(".")
        module = self.get_submodule(module_path)
        if name not in module._parameters or module._parameters[name] is None:
            raise AttributeError(f"no parameter {target!r}")
        return module._parameters[name]

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        for module in self.modules():
            fn(module)
        return self

    # ------------------------------------------------------------------ #
    # Modes & state
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def state_dict(self, prefix: str = "") -> "OrderedDict[str, Tensor]":
        state: OrderedDict[str, Tensor] = OrderedDict()
        for name, param in self.named_parameters(prefix):
            state[name] = param
        for name, buf in self.named_buffers(prefix):
            state[name] = buf
        return state

    def load_state_dict(self, state: dict) -> None:
        own = self.state_dict()
        missing = [k for k in own if k not in state]
        if missing:
            raise KeyError(f"missing keys in state_dict: {missing}")
        for key, tensor in state.items():
            if key in own:
                own[key].copy_(tensor)

    def num_parameters(self) -> int:
        """Total scalar parameter count (meta-safe; tied weights count once)."""
        seen: set[int] = set()
        total = 0
        for param in self.parameters():
            if id(param) not in seen:
                seen.add(id(param))
                total += param.numel()
        return int(total)

    @property
    def is_meta(self) -> bool:
        for param in self.parameters():
            return param.is_meta
        return False

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    def register_forward_pre_hook(self, hook: Callable) -> Callable:
        """``hook(module, args) -> args | None`` runs before forward."""
        self._forward_pre_hooks.append(hook)
        return hook

    def register_forward_hook(self, hook: Callable) -> Callable:
        """``hook(module, args, output) -> output | None`` runs after forward."""
        self._forward_hooks.append(hook)
        return hook

    def register_backward_hook(self, hook: Callable) -> Callable:
        """``hook(module, grad_input) -> grad_input | None``.

        Runs when gradients w.r.t. the module *inputs* have been computed —
        the semantics tensor-parallel ``.sync(mode="bwd_post")`` needs to
        all-reduce input gradients.
        """
        self._backward_hooks.append(hook)
        return hook

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError(
            f"{type(self).__name__} must implement forward()"
        )

    def __call__(self, *args, **kwargs):
        from .functional import _find_proxy  # late import, avoids cycle

        proxy = _find_proxy(args, kwargs)
        if proxy is not None:
            return proxy.tracer.call_module_proxy(self, args, kwargs)
        for hook in self._forward_pre_hooks:
            result = hook(self, args)
            if result is not None:
                args = result if isinstance(result, tuple) else (result,)
        if self._backward_hooks:
            args = tuple(
                _attach_backward_hooks(a, self) if isinstance(a, Tensor) else a
                for a in args
            )
        if self._slapo_meta.get("ckpt_unit") \
                and fw_events.get_recorder() is not None:
            with fw_events.layer_region(self):
                output = self._run_forward(args, kwargs)
        else:
            output = self._run_forward(args, kwargs)
        for hook in self._forward_hooks:
            result = hook(self, args, output)
            if result is not None:
                output = result
        return output

    def _run_forward(self, args, kwargs):
        if self._slapo_meta.get("checkpoint"):
            from .checkpoint import checkpoint_run

            return checkpoint_run(self.forward, *args, **kwargs)
        return self.forward(*args, **kwargs)

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        extra = self.extra_repr()
        head = f"{type(self).__name__}({extra})"
        if not self._modules:
            return head
        lines = [f"{type(self).__name__}("]
        if extra:
            lines[0] = f"{type(self).__name__}({extra},"
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        lines.append(")")
        return "\n".join(lines)


def _maybe_trace_get_attr(module: Module, name: str, value):
    """During symbolic tracing, parameter reads become get_attr nodes.

    This lets inlined (non-leaf) module code like ``x + self.bias`` trace to
    a graph that resolves the parameter *at run time*, so later sharding or
    replacement of the parameter is observed by the traced graph.
    """
    from repro.fx import tracer as fx_tracer  # late import, avoids a cycle

    active = fx_tracer.active_tracer()
    if active is None:
        return None
    return active.get_attr_proxy(module, name)


def _attach_backward_hooks(tensor: Tensor, module: Module) -> Tensor:
    """Insert an identity node whose backward runs the module's hooks."""
    if tensor.is_meta or not autograd.is_grad_enabled():
        return tensor
    if not (tensor.requires_grad or tensor.grad_fn is not None):
        return tensor
    out = Tensor(tensor.data)
    out._dtype = tensor.dtype

    def backward(grad):
        for hook in module._backward_hooks:
            result = hook(module, grad)
            if result is not None:
                grad = result
        return (grad,)

    out.grad_fn = autograd.GradNode("backward_hook", (tensor,), backward)
    out.requires_grad = True
    return out
