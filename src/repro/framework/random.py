"""Seeded random-number streams.

One generator per thread (like ``torch.manual_seed``'s per-device streams):
LocalCluster runs every simulated rank on its own thread, and each rank must
be able to seed and draw deterministically without interleaving with its
peers.  The state can be snapshotted and restored, which activation
checkpointing uses to replay identical dropout masks during recomputation.
"""

from __future__ import annotations

import threading

import numpy as np

_LOCAL = threading.local()


def _state() -> np.random.Generator:
    generator = getattr(_LOCAL, "generator", None)
    if generator is None:
        generator = np.random.default_rng(0)
        _LOCAL.generator = generator
    return generator


def manual_seed(seed: int) -> None:
    """Reset this thread's generator to a deterministic state."""
    _LOCAL.generator = np.random.default_rng(seed)


def generator() -> np.random.Generator:
    """Return this thread's generator."""
    return _state()


def get_rng_state():
    """Snapshot the generator state (opaque, for later restore)."""
    return _state().bit_generator.state


def set_rng_state(state) -> None:
    """Restore a state captured by :func:`get_rng_state`."""
    _state().bit_generator.state = state


def fork_rng(seed: int) -> np.random.Generator:
    """Return a fresh generator without disturbing the thread's stream."""
    return np.random.default_rng(seed)
