"""Hook point between the framework and the performance simulator.

The simulator installs a recorder; every functional op then reports a kernel
event (name, shapes, flops, bytes moved).  When no recorder is installed the
hooks are near-zero-cost no-ops, so ordinary eager execution is unaffected.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

# Per-thread, so a simulator trace on one thread never observes kernel
# events from LocalCluster rank threads running concurrently.
_ACTIVE = threading.local()


def set_recorder(recorder) -> None:
    _ACTIVE.recorder = recorder


def get_recorder():
    return getattr(_ACTIVE, "recorder", None)


@contextmanager
def recording(recorder):
    """Install ``recorder`` on this thread for the duration of the block."""
    prev = get_recorder()
    _ACTIVE.recorder = recorder
    try:
        yield recorder
    finally:
        _ACTIVE.recorder = prev


def record_op(name, out_shape, dtype, flops=0, bytes_moved=0, meta=None):
    """Report one kernel launch to the active recorder, if any."""
    recorder = get_recorder()
    if recorder is not None:
        recorder.record_op(name, out_shape, dtype, flops, bytes_moved, meta)


def record_comm(kind, bytes_, group_size, meta=None):
    """Report one collective to the active recorder, if any."""
    recorder = get_recorder()
    if recorder is not None:
        recorder.record_comm(kind, bytes_, group_size, meta)


@contextmanager
def fused_region(name, backend="custom"):
    """Mark all ops inside the block as a single fused kernel.

    Recorders that understand fusion merge the enclosed op events into one
    launch and drop intermediate memory round-trips; recorders that do not
    (or no recorder at all) see ordinary execution.
    """
    recorder = get_recorder()
    if recorder is None or not hasattr(recorder, "begin_fused"):
        yield
        return
    recorder.begin_fused(name, backend)
    try:
        yield
    finally:
        recorder.end_fused()


@contextmanager
def layer_region(module=None):
    """Mark the ops inside as one checkpointable layer (a checkpoint unit).

    Modules flagged ``_slapo_meta["ckpt_unit"]`` emit this around their
    forward; the simulator's recorder turns it into an op-index span so
    checkpoint ratios can be re-priced without re-tracing the model.
    ``module`` (the unit itself, when available) lets the recorder also
    attribute parameter bytes to the span — the pipeline-stage planner
    uses those to price per-stage memory.
    """
    recorder = get_recorder()
    if recorder is None or not hasattr(recorder, "begin_layer"):
        yield
        return
    recorder.begin_layer(module)
    try:
        yield
    finally:
        recorder.end_layer()


@contextmanager
def checkpoint_region():
    """Mark the ops inside as running under activation checkpointing."""
    recorder = get_recorder()
    if recorder is None or not hasattr(recorder, "begin_checkpoint"):
        yield
        return
    recorder.begin_checkpoint()
    try:
        yield
    finally:
        recorder.end_checkpoint()
