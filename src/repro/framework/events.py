"""Hook point between the framework and the performance simulator.

The simulator installs a recorder; every functional op then reports a kernel
event (name, shapes, flops, bytes moved).  When no recorder is installed the
hooks are near-zero-cost no-ops, so ordinary eager execution is unaffected.
"""

from __future__ import annotations

from contextlib import contextmanager

_RECORDER = None


def set_recorder(recorder) -> None:
    global _RECORDER
    _RECORDER = recorder


def get_recorder():
    return _RECORDER


@contextmanager
def recording(recorder):
    """Install ``recorder`` for the duration of the block."""
    global _RECORDER
    prev = _RECORDER
    _RECORDER = recorder
    try:
        yield recorder
    finally:
        _RECORDER = prev


def record_op(name, out_shape, dtype, flops=0, bytes_moved=0, meta=None):
    """Report one kernel launch to the active recorder, if any."""
    if _RECORDER is not None:
        _RECORDER.record_op(name, out_shape, dtype, flops, bytes_moved, meta)


def record_comm(kind, bytes_, group_size, meta=None):
    """Report one collective to the active recorder, if any."""
    if _RECORDER is not None:
        _RECORDER.record_comm(kind, bytes_, group_size, meta)


@contextmanager
def fused_region(name, backend="custom"):
    """Mark all ops inside the block as a single fused kernel.

    Recorders that understand fusion merge the enclosed op events into one
    launch and drop intermediate memory round-trips; recorders that do not
    (or no recorder at all) see ordinary execution.
    """
    if _RECORDER is None or not hasattr(_RECORDER, "begin_fused"):
        yield
        return
    _RECORDER.begin_fused(name, backend)
    try:
        yield
    finally:
        _RECORDER.end_fused()


@contextmanager
def layer_region(module=None):
    """Mark the ops inside as one checkpointable layer (a checkpoint unit).

    Modules flagged ``_slapo_meta["ckpt_unit"]`` emit this around their
    forward; the simulator's recorder turns it into an op-index span so
    checkpoint ratios can be re-priced without re-tracing the model.
    ``module`` (the unit itself, when available) lets the recorder also
    attribute parameter bytes to the span — the pipeline-stage planner
    uses those to price per-stage memory.
    """
    if _RECORDER is None or not hasattr(_RECORDER, "begin_layer"):
        yield
        return
    _RECORDER.begin_layer(module)
    try:
        yield
    finally:
        _RECORDER.end_layer()


@contextmanager
def checkpoint_region():
    """Mark the ops inside as running under activation checkpointing."""
    if _RECORDER is None or not hasattr(_RECORDER, "begin_checkpoint"):
        yield
        return
    _RECORDER.begin_checkpoint()
    try:
        yield
    finally:
        _RECORDER.end_checkpoint()
