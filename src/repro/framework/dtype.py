"""Data types for the mini framework.

The framework simulates mixed-precision training: ``float16`` tensors use
``numpy.float16`` storage so numerical behaviour (rounding, overflow to inf)
is representative of real fp16 hardware, while optimizers keep fp32 master
weights exactly like Apex/Megatron mixed precision.
"""

from __future__ import annotations

import numpy as np


class DType:
    """A framework dtype: a named wrapper around a numpy dtype."""

    _registry: dict[str, "DType"] = {}

    def __init__(self, name: str, np_dtype: np.dtype, is_floating: bool):
        self.name = name
        self.np_dtype = np.dtype(np_dtype)
        self.is_floating = is_floating
        DType._registry[name] = self

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return self.np_dtype.itemsize

    def __repr__(self) -> str:
        return f"repro.{self.name}"

    def __eq__(self, other) -> bool:
        return isinstance(other, DType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(self.name)

    @staticmethod
    def from_numpy(np_dtype) -> "DType":
        """Map a numpy dtype to the corresponding framework dtype."""
        key = np.dtype(np_dtype)
        for dt in DType._registry.values():
            if dt.np_dtype == key:
                return dt
        raise TypeError(f"unsupported numpy dtype: {np_dtype}")

    @staticmethod
    def from_name(name: str) -> "DType":
        try:
            return DType._registry[name]
        except KeyError:
            raise TypeError(f"unknown dtype name: {name}") from None


float16 = DType("float16", np.float16, is_floating=True)
float32 = DType("float32", np.float32, is_floating=True)
float64 = DType("float64", np.float64, is_floating=True)
int32 = DType("int32", np.int32, is_floating=False)
int64 = DType("int64", np.int64, is_floating=False)
bool_ = DType("bool", np.bool_, is_floating=False)

# Promotion order for binary ops mixing dtypes (higher wins).
_PROMOTION_RANK = {
    "bool": 0,
    "int32": 1,
    "int64": 2,
    "float16": 3,
    "float32": 4,
    "float64": 5,
}


def promote(a: DType, b: DType) -> DType:
    """Return the result dtype of a binary op between dtypes ``a`` and ``b``."""
    if a == b:
        return a
    ra, rb = _PROMOTION_RANK[a.name], _PROMOTION_RANK[b.name]
    return a if ra >= rb else b
