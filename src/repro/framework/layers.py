"""Built-in layer modules (the framework's ``nn`` namespace).

All layers support construction on ``device="meta"``: parameters then carry
shapes only, which is how billion-parameter models are instantiated for the
performance simulator.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Iterable

import numpy as np

from . import dtype as dtypes, functional as F, init
from .dtype import DType
from .module import Module
from .parameter import Parameter
from .tensor import Tensor


def _param(tensor: Tensor) -> Parameter:
    return Parameter.from_tensor(tensor)


class Identity(Module):
    def forward(self, x):
        return x


class Linear(Module):
    """Affine layer with torch's (out_features, in_features) weight layout.

    The layout matters to Slapo schedules: ``.shard("weight", axis=0)``
    partitions the *output* dimension (column parallel in Megatron terms)
    and ``axis=1`` partitions the input dimension (row parallel).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 dtype: DType = dtypes.float32, device: str = "cpu"):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = _param(init.kaiming_uniform(
            (out_features, in_features), fan_in=in_features,
            dtype=dtype, device=device))
        if bias:
            self.bias = _param(init.kaiming_uniform(
                (out_features,), fan_in=in_features, dtype=dtype,
                device=device))
        else:
            self.register_parameter("bias", None)

    def forward(self, x):
        return F.linear(x, self.weight, self._parameters.get("bias"))

    def extra_repr(self) -> str:
        return (f"in_features={self.in_features}, "
                f"out_features={self.out_features}, "
                f"bias={self._parameters.get('bias') is not None}")


class LayerNorm(Module):
    def __init__(self, normalized_shape, eps: float = 1e-5,
                 dtype: DType = dtypes.float32, device: str = "cpu"):
        super().__init__()
        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape = tuple(normalized_shape)
        self.eps = eps
        self.weight = _param(init.ones(self.normalized_shape, dtype, device))
        self.bias = _param(init.zeros(self.normalized_shape, dtype, device))

    def forward(self, x):
        return F.layer_norm(x, self.normalized_shape, self.weight, self.bias,
                            self.eps)

    def extra_repr(self) -> str:
        return f"{self.normalized_shape}, eps={self.eps}"


class RMSNorm(Module):
    """LLaMA-style RMS normalisation."""

    def __init__(self, hidden_size: int, eps: float = 1e-6,
                 dtype: DType = dtypes.float32, device: str = "cpu"):
        super().__init__()
        self.eps = eps
        self.weight = _param(init.ones((hidden_size,), dtype, device))

    def forward(self, x):
        return F.rms_norm(x, self.weight, self.eps)


class Embedding(Module):
    def __init__(self, num_embeddings: int, embedding_dim: int,
                 padding_idx: int | None = None,
                 dtype: DType = dtypes.float32, device: str = "cpu"):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        self.weight = _param(init.normal(
            (num_embeddings, embedding_dim), std=0.02, dtype=dtype,
            device=device))

    def forward(self, indices):
        return F.embedding(indices, self.weight, self.padding_idx)

    def extra_repr(self) -> str:
        return f"{self.num_embeddings}, {self.embedding_dim}"


class Dropout(Module):
    def __init__(self, p: float = 0.5):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1): {p}")
        self.p = p

    def forward(self, x):
        return F.dropout(x, self.p, self.training)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class GELU(Module):
    def forward(self, x):
        return F.gelu(x)


class ReLU(Module):
    def forward(self, x):
        return F.relu(x)


class SiLU(Module):
    def forward(self, x):
        return F.silu(x)


class Tanh(Module):
    def forward(self, x):
        return F.tanh(x)


class Softmax(Module):
    def __init__(self, dim: int = -1):
        super().__init__()
        self.dim = dim

    def forward(self, x):
        return F.softmax(x, self.dim)


class Conv2d(Module):
    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 dtype: DType = dtypes.float32, device: str = "cpu"):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = _param(init.kaiming_uniform(
            (out_channels, in_channels, kernel_size, kernel_size),
            fan_in=fan_in, dtype=dtype, device=device))
        if bias:
            self.bias = _param(init.kaiming_uniform(
                (out_channels,), fan_in=fan_in, dtype=dtype, device=device))
        else:
            self.register_parameter("bias", None)

    def forward(self, x):
        return F.conv2d(x, self.weight, self._parameters.get("bias"),
                        self.stride, self.padding)

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, "
                f"padding={self.padding}")


class BatchNorm2d(Module):
    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1, dtype: DType = dtypes.float32,
                 device: str = "cpu"):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = _param(init.ones((num_features,), dtype, device))
        self.bias = _param(init.zeros((num_features,), dtype, device))
        self.register_buffer("running_mean",
                             init.zeros((num_features,), dtypes.float32, device))
        self.register_buffer("running_var",
                             init.ones((num_features,), dtypes.float32, device))

    def forward(self, x):
        # Attribute access (not ``self._buffers[...]``) so an inlined trace
        # records get_attr nodes and resolves the running stats *live* at
        # run time — a traced graph must never bake the buffer tensors.
        return F.batch_norm(x, self.running_mean, self.running_var,
                            self.weight, self.bias, self.training,
                            self.momentum, self.eps)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None,
                 padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x):
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size: int = 1):
        super().__init__()
        self.output_size = output_size

    def forward(self, x):
        return F.adaptive_avg_pool2d(x, self.output_size)


class MoEExpert(Module):
    """One feed-forward expert of a mixture-of-experts layer."""

    def __init__(self, hidden_size: int, intermediate_size: int,
                 dtype: DType = dtypes.float32, device: str = "cpu"):
        super().__init__()
        self.fc1 = Linear(hidden_size, intermediate_size, dtype=dtype,
                          device=device)
        self.fc2 = Linear(intermediate_size, hidden_size, dtype=dtype,
                          device=device)

    def forward(self, x):
        return self.fc2(F.gelu(self.fc1(x)))


def fill_capacity(choices: np.ndarray, num_experts: int, capacity: int
                  ) -> tuple[np.ndarray, np.ndarray, int]:
    """Assign top-k expert choices to capacity slots, first come first served.

    ``choices`` is ``(seq, k)`` expert ids in per-token priority order.
    Tokens are processed in sequence order and their choices in priority
    order; an expert that is already at ``capacity`` drops the assignment.
    Returns ``(slot_pos, valid, dropped)`` where ``slot_pos[t, j]`` is the
    capacity slot the assignment landed in and ``dropped`` counts the
    assignments that found their expert full — deterministic by
    construction, which the differential verifier relies on.
    """
    seq, top_k = choices.shape
    slot_pos = np.zeros((seq, top_k), dtype=np.int64)
    valid = np.zeros((seq, top_k), dtype=bool)
    fill = np.zeros(num_experts, dtype=np.int64)
    for t in range(seq):
        for j in range(top_k):
            expert = choices[t, j]
            if fill[expert] < capacity:
                slot_pos[t, j] = fill[expert]
                valid[t, j] = True
                fill[expert] += 1
    return slot_pos, valid, int(seq * top_k - valid.sum())


def top_k_choices(probs: np.ndarray, top_k: int) -> np.ndarray:
    """Per-token expert ids in descending-probability order, ``(seq, k)``.

    Ties break toward the lower expert index (stable sort), so the
    routing is a pure deterministic function of the probabilities.
    """
    return np.argsort(-probs, axis=-1, kind="stable")[:, :top_k]


class MoEFeedForward(Module):
    """Top-k gated mixture-of-experts feed-forward (Switch/GShard style).

    Routing is computed per sample: every token picks its ``top_k``
    experts by gate probability, and each expert accepts at most
    ``capacity = ceil(capacity_factor · seq · top_k / num_experts)``
    assignments per sample (first come, first served; the overflow is
    *dropped* — the token's output contribution for that slot is zero and
    the surrounding residual connection carries it through).  The number
    of dropped assignments of the latest forward is kept in
    ``last_dropped``.

    Expert parallelism: ``sch.shard_experts(ep)`` keeps ``num_experts/ep``
    experts per rank and records an ``moe_ep`` annotation; the forward
    then exchanges capacity-shaped dispatch/combine buffers with the other
    expert-parallel ranks via two ``all_to_all`` collectives, and the
    primitive's sync hooks restore the replicated output (forward
    all-reduce) and gradients (backward all-reduce) — see
    :class:`repro.slapo.primitives.sharding.ShardExpertsPrimitive`.
    """

    def __init__(self, hidden_size: int, intermediate_size: int,
                 num_experts: int, top_k: int = 2,
                 capacity_factor: float = 1.25,
                 dtype: DType = dtypes.float32, device: str = "cpu"):
        super().__init__()
        if not 1 <= top_k <= num_experts:
            raise ValueError(
                f"top_k must be in [1, num_experts]: {top_k} vs "
                f"{num_experts}"
            )
        if capacity_factor <= 0:
            raise ValueError(f"capacity_factor must be > 0: {capacity_factor}")
        self.hidden_size = hidden_size
        self.intermediate_size = intermediate_size
        self.num_experts = num_experts
        self.top_k = top_k
        self.capacity_factor = capacity_factor
        self.gate = Linear(hidden_size, num_experts, bias=False, dtype=dtype,
                           device=device)
        self.experts = ModuleList([
            MoEExpert(hidden_size, intermediate_size, dtype=dtype,
                      device=device)
            for _ in range(num_experts)
        ])
        #: dropped (token, expert) assignments of the latest real forward
        self.last_dropped = 0
        #: when True, forward returns ``{"output": y, "dropped": n}`` so a
        #: traced graph carries routing stats through the dataflow instead
        #: of callers scraping ``last_dropped`` off the module afterwards
        self.emit_stats = False

    def extra_repr(self) -> str:
        return (f"num_experts={self.num_experts}, top_k={self.top_k}, "
                f"capacity_factor={self.capacity_factor}")

    def capacity(self, seq_len: int) -> int:
        return max(1, math.ceil(
            self.capacity_factor * seq_len * self.top_k / self.num_experts))

    # -- routing -------------------------------------------------------- #
    def _route(self, probs_np, batch: int, seq: int):
        """(slot_expert, slot_pos, valid, capacity, dropped) per sample.

        ``probs_np is None`` (meta tensors have no data) synthesizes a
        deterministic round-robin assignment with the same shapes, so the
        simulator traces the exact capacity-shaped buffers a real forward
        produces.
        """
        cap = self.capacity(seq)
        k, num = self.top_k, self.num_experts
        slot_expert = np.empty((batch, seq, k), dtype=np.int64)
        slot_pos = np.empty((batch, seq, k), dtype=np.int64)
        valid = np.empty((batch, seq, k), dtype=bool)
        dropped = 0
        for b in range(batch):
            if probs_np is None:
                choices = (np.arange(seq)[:, None] * k
                           + np.arange(k)[None, :]) % num
            else:
                choices = top_k_choices(probs_np[b], k)
            slot_expert[b] = choices
            slot_pos[b], valid[b], sample_dropped = \
                fill_capacity(choices, num, cap)
            dropped += sample_dropped
        return slot_expert, slot_pos, valid, cap, dropped

    # -- forward -------------------------------------------------------- #
    def _pad_row(self, x, batch: int, width: int):
        if x.is_meta:
            return Tensor.meta((batch, 1, width), x.dtype)
        return Tensor(np.zeros((batch, 1, width), x.data.dtype),
                      dtype=x.dtype)

    def _combine(self, slots, probs, slot_expert, slot_pos, valid,
                 cap: int, batch: int, seq: int, hidden: int):
        """Gather each token's expert outputs and mix them by gate value.

        ``slots`` is ``(batch, num_experts·capacity, hidden)``; invalid
        (dropped or foreign-stripe) assignments index a zero padding row
        and are gate-masked, so they contribute exactly nothing — forward
        and backward.
        """
        padded = F.cat([slots, self._pad_row(slots, batch, hidden)], dim=1)
        slot_idx = np.where(valid, slot_expert * cap + slot_pos,
                            self.num_experts * cap)
        b_idx = np.arange(batch)[:, None, None]
        s_idx = np.arange(seq)[None, :, None]
        per_slot = padded[b_idx, slot_idx]              # (B, S, k, H)
        gates = probs[b_idx, s_idx, slot_expert]        # (B, S, k)
        if gates.is_meta:
            mask = Tensor.meta(tuple(valid.shape), gates.dtype)
        else:
            mask = Tensor(valid.astype(gates.data.dtype), dtype=gates.dtype)
        return ((gates * mask).unsqueeze(-1) * per_slot).sum(dim=2)

    def forward(self, x):
        batch, seq, hidden = (int(d) for d in x.shape)
        probs = F.softmax(self.gate(x), dim=-1)
        probs_np = None if x.is_meta else probs.numpy()
        slot_expert, slot_pos, valid, cap, dropped = \
            self._route(probs_np, batch, seq)
        self.last_dropped = dropped
        num = self.num_experts

        # Token index feeding each (sample, expert, capacity) slot;
        # unfilled slots point at the zero padding row (index ``seq``).
        token_for_slot = np.full((batch, num, cap), seq, dtype=np.int64)
        bb, tt, jj = np.nonzero(valid)
        token_for_slot[bb, slot_expert[bb, tt, jj],
                       slot_pos[bb, tt, jj]] = tt
        x_pad = F.cat([x, self._pad_row(x, batch, hidden)], dim=1)

        spec = self._slapo_meta.get("moe_ep")
        if spec is None or spec["group"].size == 1:
            b_idx = np.arange(batch)[:, None, None]
            dispatch = x_pad[b_idx, token_for_slot]     # (B, E, C, H)
            outs = [self.experts[e](dispatch[:, e]) for e in range(num)]
            slots = F.reshape(F.stack(outs, dim=1),
                              (batch, num * cap, hidden))
            out = self._combine(slots, probs, slot_expert, slot_pos,
                                valid, cap, batch, seq, hidden)
        else:
            out = self._forward_expert_parallel(
                x_pad, probs, spec, token_for_slot, slot_expert, slot_pos,
                valid, cap, batch, seq, hidden)
        if self.emit_stats:
            return {"output": out, "dropped": dropped}
        return out

    def _forward_expert_parallel(self, x_pad, probs, spec, token_for_slot,
                                 slot_expert, slot_pos, valid, cap: int,
                                 batch: int, seq: int, hidden: int):
        """Dispatch → local experts → combine across the ep group.

        Routing is replicated (identical on every ep rank); the *work* is
        partitioned two ways: each rank owns a contiguous stripe of the
        tokens (dispatch side) and a contiguous slice of the experts
        (compute side).  The returned output covers only this rank's token
        stripe — the ``shard_experts`` forward hook all-reduces the
        disjoint stripes back into the full replicated output, and its
        backward hook all-reduces the matching stripe-partial gradients.
        """
        group = spec["group"]
        world = group.size
        num_local = spec["num_local"]
        num = self.num_experts
        my = group.ranks.index(group.rank)

        # Contiguous token stripes (uneven counts allowed: the exchanged
        # buffers are capacity-shaped, not stripe-shaped).
        owner = np.empty(batch * seq, dtype=np.int64)
        for index, chunk in enumerate(
                np.array_split(np.arange(batch * seq), world)):
            owner[chunk] = index
        owner = owner.reshape(batch, seq)
        owner_pad = np.concatenate(
            [owner, np.full((batch, 1), -1, dtype=np.int64)], axis=1)
        b_idx = np.arange(batch)[:, None, None]
        owner_of_slot = owner_pad[b_idx, token_for_slot]    # (B, E, C)
        mine = np.where(owner_of_slot == my, token_for_slot, seq)

        # Dispatch: expert-major buffer, chunk j of axis 0 → ep rank j.
        send = x_pad[np.arange(batch)[None, :, None],
                     mine.transpose(1, 0, 2)]               # (E, B, C, H)
        received = group.all_to_all(send, axis=0)
        # Segment j holds *my* experts' slots filled from rank j's stripe;
        # stripes fill disjoint slots, so the sum reassembles them exactly.
        dispatch = F.reshape(
            received, (world, num_local, batch, cap, hidden)).sum(dim=0)
        outs = [self.experts[e](dispatch[e]) for e in range(num_local)]
        stacked = F.stack(outs, dim=0)                  # (E_local, B, C, H)

        # Combine: every peer gets one copy of my experts' outputs; the
        # return all-to-all reassembles the full expert-major buffer in
        # global expert order.  (Each copy's gradient carries exactly one
        # stripe's contribution; the tape sums the copies.)
        full = group.all_to_all(F.cat([stacked] * world, dim=0), axis=0)
        slots = F.reshape(full.permute(1, 0, 2, 3), (batch, num * cap,
                                                     hidden))
        valid_mine = valid & (owner[:, :, None] == my)
        return self._combine(slots, probs, slot_expert, slot_pos,
                             valid_mine, cap, batch, seq, hidden)


class Sequential(Module):
    """Chain of modules executed in insertion order."""

    def __init__(self, *modules):
        super().__init__()
        if len(modules) == 1 and isinstance(modules[0], OrderedDict):
            for name, module in modules[0].items():
                self.add_module(name, module)
        else:
            for idx, module in enumerate(modules):
                self.add_module(str(idx), module)

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self):
        return iter(self._modules.values())

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]

    def append(self, module: Module) -> "Sequential":
        self.add_module(str(len(self._modules)), module)
        return self

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x


class ModuleList(Module):
    """Indexed list of submodules (no forward of its own)."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        for idx, module in enumerate(modules):
            self.add_module(str(idx), module)

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self):
        return iter(self._modules.values())

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return list(self._modules.values())[idx]
        if idx < 0:
            idx += len(self._modules)
        return self._modules[str(idx)]

    def __setitem__(self, idx: int, module: Module) -> None:
        if idx < 0:
            idx += len(self._modules)
        self._modules[str(idx)] = module

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._modules)), module)
        return self
