"""Built-in layer modules (the framework's ``nn`` namespace).

All layers support construction on ``device="meta"``: parameters then carry
shapes only, which is how billion-parameter models are instantiated for the
performance simulator.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Iterable

import numpy as np

from . import dtype as dtypes, functional as F, init
from .dtype import DType
from .module import Module
from .parameter import Parameter
from .tensor import Tensor


def _param(tensor: Tensor) -> Parameter:
    return Parameter.from_tensor(tensor)


class Identity(Module):
    def forward(self, x):
        return x


class Linear(Module):
    """Affine layer with torch's (out_features, in_features) weight layout.

    The layout matters to Slapo schedules: ``.shard("weight", axis=0)``
    partitions the *output* dimension (column parallel in Megatron terms)
    and ``axis=1`` partitions the input dimension (row parallel).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 dtype: DType = dtypes.float32, device: str = "cpu"):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = _param(init.kaiming_uniform(
            (out_features, in_features), fan_in=in_features,
            dtype=dtype, device=device))
        if bias:
            self.bias = _param(init.kaiming_uniform(
                (out_features,), fan_in=in_features, dtype=dtype,
                device=device))
        else:
            self.register_parameter("bias", None)

    def forward(self, x):
        return F.linear(x, self.weight, self._parameters.get("bias"))

    def extra_repr(self) -> str:
        return (f"in_features={self.in_features}, "
                f"out_features={self.out_features}, "
                f"bias={self._parameters.get('bias') is not None}")


class LayerNorm(Module):
    def __init__(self, normalized_shape, eps: float = 1e-5,
                 dtype: DType = dtypes.float32, device: str = "cpu"):
        super().__init__()
        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape = tuple(normalized_shape)
        self.eps = eps
        self.weight = _param(init.ones(self.normalized_shape, dtype, device))
        self.bias = _param(init.zeros(self.normalized_shape, dtype, device))

    def forward(self, x):
        return F.layer_norm(x, self.normalized_shape, self.weight, self.bias,
                            self.eps)

    def extra_repr(self) -> str:
        return f"{self.normalized_shape}, eps={self.eps}"


class RMSNorm(Module):
    """LLaMA-style RMS normalisation."""

    def __init__(self, hidden_size: int, eps: float = 1e-6,
                 dtype: DType = dtypes.float32, device: str = "cpu"):
        super().__init__()
        self.eps = eps
        self.weight = _param(init.ones((hidden_size,), dtype, device))

    def forward(self, x):
        return F.rms_norm(x, self.weight, self.eps)


class Embedding(Module):
    def __init__(self, num_embeddings: int, embedding_dim: int,
                 padding_idx: int | None = None,
                 dtype: DType = dtypes.float32, device: str = "cpu"):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.padding_idx = padding_idx
        self.weight = _param(init.normal(
            (num_embeddings, embedding_dim), std=0.02, dtype=dtype,
            device=device))

    def forward(self, indices):
        return F.embedding(indices, self.weight, self.padding_idx)

    def extra_repr(self) -> str:
        return f"{self.num_embeddings}, {self.embedding_dim}"


class Dropout(Module):
    def __init__(self, p: float = 0.5):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1): {p}")
        self.p = p

    def forward(self, x):
        return F.dropout(x, self.p, self.training)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class GELU(Module):
    def forward(self, x):
        return F.gelu(x)


class ReLU(Module):
    def forward(self, x):
        return F.relu(x)


class SiLU(Module):
    def forward(self, x):
        return F.silu(x)


class Tanh(Module):
    def forward(self, x):
        return F.tanh(x)


class Softmax(Module):
    def __init__(self, dim: int = -1):
        super().__init__()
        self.dim = dim

    def forward(self, x):
        return F.softmax(x, self.dim)


class Conv2d(Module):
    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 dtype: DType = dtypes.float32, device: str = "cpu"):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = _param(init.kaiming_uniform(
            (out_channels, in_channels, kernel_size, kernel_size),
            fan_in=fan_in, dtype=dtype, device=device))
        if bias:
            self.bias = _param(init.kaiming_uniform(
                (out_channels,), fan_in=fan_in, dtype=dtype, device=device))
        else:
            self.register_parameter("bias", None)

    def forward(self, x):
        return F.conv2d(x, self.weight, self._parameters.get("bias"),
                        self.stride, self.padding)

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, "
                f"kernel_size={self.kernel_size}, stride={self.stride}, "
                f"padding={self.padding}")


class BatchNorm2d(Module):
    def __init__(self, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1, dtype: DType = dtypes.float32,
                 device: str = "cpu"):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = _param(init.ones((num_features,), dtype, device))
        self.bias = _param(init.zeros((num_features,), dtype, device))
        self.register_buffer("running_mean",
                             init.zeros((num_features,), dtypes.float32, device))
        self.register_buffer("running_var",
                             init.ones((num_features,), dtypes.float32, device))

    def forward(self, x):
        return F.batch_norm(x, self._buffers["running_mean"],
                            self._buffers["running_var"], self.weight,
                            self.bias, self.training, self.momentum, self.eps)


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None,
                 padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x):
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)


class AdaptiveAvgPool2d(Module):
    def __init__(self, output_size: int = 1):
        super().__init__()
        self.output_size = output_size

    def forward(self, x):
        return F.adaptive_avg_pool2d(x, self.output_size)


class Sequential(Module):
    """Chain of modules executed in insertion order."""

    def __init__(self, *modules):
        super().__init__()
        if len(modules) == 1 and isinstance(modules[0], OrderedDict):
            for name, module in modules[0].items():
                self.add_module(name, module)
        else:
            for idx, module in enumerate(modules):
                self.add_module(str(idx), module)

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self):
        return iter(self._modules.values())

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]

    def append(self, module: Module) -> "Sequential":
        self.add_module(str(len(self._modules)), module)
        return self

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x


class ModuleList(Module):
    """Indexed list of submodules (no forward of its own)."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        for idx, module in enumerate(modules):
            self.add_module(str(idx), module)

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self):
        return iter(self._modules.values())

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return list(self._modules.values())[idx]
        if idx < 0:
            idx += len(self._modules)
        return self._modules[str(idx)]

    def __setitem__(self, idx: int, module: Module) -> None:
        if idx < 0:
            idx += len(self._modules)
        self._modules[str(idx)] = module

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._modules)), module)
        return self
