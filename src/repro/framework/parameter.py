"""Learnable parameter: a Tensor that modules register automatically."""

from __future__ import annotations

import numpy as np

from . import dtype as dtypes
from .dtype import DType
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor flagged as a module parameter (requires grad by default)."""

    def __init__(self, data, dtype: DType | None = None,
                 requires_grad: bool = True):
        super().__init__(data, dtype=dtype, requires_grad=requires_grad)
        # Sharding metadata filled in by slapo's .shard() primitive.
        self.shard_spec = None

    @staticmethod
    def meta(shape, dtype: DType = dtypes.float32,
             requires_grad: bool = True) -> "Parameter":
        p = Parameter.__new__(Parameter)
        Tensor_meta = Tensor.meta(shape, dtype, requires_grad)
        p.__dict__.update(Tensor_meta.__dict__)
        p.data = None
        p._meta_shape = tuple(int(s) for s in shape)
        p._dtype = dtype
        p.device = "meta"
        p.requires_grad = requires_grad and dtype.is_floating
        p.grad = None
        p.grad_fn = None
        p.shard_spec = None
        return p

    @staticmethod
    def from_tensor(t: Tensor, requires_grad: bool = True) -> "Parameter":
        if t.is_meta:
            return Parameter.meta(tuple(t.shape), t.dtype, requires_grad)
        return Parameter(t.data, dtype=t.dtype, requires_grad=requires_grad)

    def __repr__(self) -> str:
        if self.is_meta:
            return (f"Parameter(meta, shape={tuple(self.shape)}, "
                    f"dtype={self.dtype.name})")
        return f"Parameter(shape={tuple(self.shape)}, dtype={self.dtype.name})"
