"""Mini deep-learning framework: the PyTorch-shaped substrate for Slapo.

Public surface (mirrors the torch APIs the paper's schedules touch)::

    from repro import framework as fw
    from repro.framework import functional as F

    layer = fw.Linear(16, 32)
    out = layer(fw.randn(4, 16))
    out.sum().backward()
"""

from . import dtype as dtypes
from . import functional
from . import init
from . import random
from .autograd import enable_grad, no_grad
from .dtype import DType, bool_, float16, float32, float64, int32, int64
from .events import recording, set_recorder
from .layers import (
    GELU,
    SiLU,
    AdaptiveAvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Identity,
    LayerNorm,
    Linear,
    MaxPool2d,
    MoEExpert,
    MoEFeedForward,
    ModuleList,
    ReLU,
    RMSNorm,
    Sequential,
    Softmax,
    Tanh,
)
from .module import Module
from .optim import SGD, AdamW, Optimizer
from .parameter import Parameter
from .random import get_rng_state, manual_seed, set_rng_state
from .tensor import (
    Size,
    Tensor,
    allclose,
    arange,
    astensor,
    full,
    ones,
    ones_like,
    rand,
    randint,
    randn,
    tensor,
    zeros,
    zeros_like,
)

__all__ = [
    "DType", "float16", "float32", "float64", "int32", "int64", "bool_",
    "Tensor", "Parameter", "Module", "Size",
    "Linear", "LayerNorm", "RMSNorm", "Embedding", "Dropout", "GELU", "ReLU",
    "SiLU", "Tanh", "Softmax", "Conv2d", "BatchNorm2d", "MaxPool2d",
    "AdaptiveAvgPool2d", "Sequential", "ModuleList", "Identity",
    "MoEExpert", "MoEFeedForward",
    "SGD", "AdamW", "Optimizer",
    "no_grad", "enable_grad", "manual_seed", "get_rng_state", "set_rng_state",
    "recording", "set_recorder",
    "tensor", "zeros", "ones", "full", "arange", "randn", "rand", "randint",
    "zeros_like", "ones_like", "allclose", "astensor",
    "functional", "init", "random", "dtypes",
]
