"""Differentiable functional ops.

Every op in this module follows the same protocol:

1. **Proxy dispatch** — if any argument is an ``repro.fx`` Proxy, the op
   records a ``call_function`` node instead of computing (this is how the
   symbolic tracer sees through model code without patching).
2. **Meta path** — if any tensor argument is on the meta device, only shape
   inference runs and a kernel event is reported to the simulator.
3. **Eager path** — numpy compute, simulator event, and a tape node for
   reverse-mode autodiff.

Ops accept plain Python scalars and numpy arrays wherever a tensor is
expected, coercing via :func:`repro.framework.tensor.astensor`.
"""

from __future__ import annotations

import builtins
import functools
import math
from typing import Sequence

import numpy as np
from scipy import special as _sp_special

from . import dtype as dtypes, events, random as frandom
from .autograd import GradNode, is_grad_enabled, unbroadcast
from .dtype import DType, promote
from .tensor import Tensor, astensor

_INV_SQRT2 = 1.0 / math.sqrt(2.0)
_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


# ---------------------------------------------------------------------- #
# Dispatch plumbing
# ---------------------------------------------------------------------- #
def _find_proxy(*values):
    """Return the first fx Proxy found (searching nested tuples/lists)."""
    for value in values:
        if getattr(value, "is_fx_proxy", False):
            return value
        if isinstance(value, (tuple, list)):
            found = _find_proxy(*value)
            if found is not None:
                return found
        elif isinstance(value, dict):
            found = _find_proxy(*value.values())
            if found is not None:
                return found
    return None


def traceable(fn):
    """Make an op visible to the symbolic tracer as a ``call_function``."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        proxy = _find_proxy(args, kwargs)
        if proxy is not None:
            return proxy.tracer.create_proxy(
                "call_function", wrapper, args, kwargs
            )
        return fn(*args, **kwargs)

    wrapper.__wrapped_op__ = fn
    return wrapper


def traceable_mutating(writes: tuple, is_mutating):
    """Like :func:`traceable`, but calls that will mutate their arguments
    trace to an explicit ``mutate`` marker node instead of a plain
    ``call_function`` — the mutation stays visible to graph passes (see
    :mod:`repro.fx.functionalize`).  ``writes`` names the mutated argument
    positions; ``is_mutating(*args, **kwargs)`` decides per call site.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            proxy = _find_proxy(args, kwargs)
            if proxy is not None:
                if is_mutating(*args, **kwargs):
                    from repro.fx.functionalize import mutate  # late: cycle
                    return proxy.tracer.create_proxy(
                        "call_function", mutate, (wrapper, *args),
                        {**kwargs, "_writes": writes})
                return proxy.tracer.create_proxy(
                    "call_function", wrapper, args, kwargs)
            return fn(*args, **kwargs)

        wrapper.__wrapped_op__ = fn
        wrapper.__mutates__ = writes
        wrapper.__is_mutating__ = is_mutating
        return wrapper

    return decorate


def _batch_norm_mutates(x, running_mean=None, running_var=None, weight=None,
                        bias=None, training=False, momentum=0.1, eps=1e-5):
    """Train-mode batch norm writes its running-stat buffers."""
    if running_mean is None and running_var is None:
        return False
    if getattr(training, "is_fx_proxy", False):
        return True  # not statically known at trace time: assume writes
    return bool(training)


def _any_meta(*tensors) -> bool:
    return any(t.is_meta for t in tensors if isinstance(t, Tensor))


def _nbytes(shape, dtype: DType) -> int:
    n = 1
    for s in shape:
        n *= s
    return n * dtype.itemsize


def _numel(shape) -> int:
    n = 1
    for s in shape:
        n *= s
    return n


def _finalize(name, data, inputs, backward_fn, dtype=None, flops=0,
              bytes_moved=None, meta=None):
    """Wrap raw output data into a tensor with event + tape bookkeeping."""
    out = Tensor(data, dtype=dtype)
    if bytes_moved is None:
        bytes_moved = out.nbytes + builtins.sum(
            t.nbytes for t in inputs if isinstance(t, Tensor)
        )
    events.record_op(name, tuple(out.shape), out.dtype, flops, bytes_moved, meta)
    if is_grad_enabled() and any(
        isinstance(t, Tensor) and (t.requires_grad or t.grad_fn is not None)
        for t in inputs
    ):
        tensor_inputs = tuple(t if isinstance(t, Tensor) else None for t in inputs)
        out.grad_fn = GradNode(name, tensor_inputs, backward_fn)
        out.requires_grad = True
    return out


def _meta_result(name, shape, dtype, inputs, flops=0, bytes_moved=None,
                 meta=None):
    if bytes_moved is None:
        bytes_moved = _nbytes(shape, dtype) + builtins.sum(
            t.nbytes for t in inputs if isinstance(t, Tensor)
        )
    events.record_op(name, tuple(shape), dtype, flops, bytes_moved, meta)
    return Tensor.meta(shape, dtype)


# ---------------------------------------------------------------------- #
# Elementwise binary ops
# ---------------------------------------------------------------------- #
def _binary(name, a, b, fwd, bwd_a, bwd_b, flops_per_elem=1):
    # Python-number operands adopt the tensor's dtype (torch's scalar
    # promotion): x_fp16 / 8.0 stays fp16.
    if isinstance(a, Tensor) and isinstance(b, (bool, int, float)):
        b = astensor(b, dtype=a.dtype if a.dtype.is_floating else None)
    elif isinstance(b, Tensor) and isinstance(a, (bool, int, float)):
        a = astensor(a, dtype=b.dtype if b.dtype.is_floating else None)
    a, b = astensor(a), astensor(b)
    out_dtype = promote(a.dtype, b.dtype)
    if _any_meta(a, b):
        shape = np.broadcast_shapes(tuple(a.shape), tuple(b.shape))
        return _meta_result(name, shape, out_dtype, (a, b),
                            flops=_numel(shape) * flops_per_elem)
    data = fwd(a.data, b.data)

    def backward(grad):
        ga = unbroadcast(bwd_a(grad, a.data, b.data, data), tuple(a.shape)) \
            if bwd_a else None
        gb = unbroadcast(bwd_b(grad, a.data, b.data, data), tuple(b.shape)) \
            if bwd_b else None
        return (ga, gb)

    return _finalize(name, data, (a, b), backward, dtype=out_dtype,
                     flops=data.size * flops_per_elem)


@traceable
def add(a, b):
    return _binary("add", a, b, lambda x, y: x + y,
                   lambda g, x, y, o: g, lambda g, x, y, o: g)


@traceable
def sub(a, b):
    return _binary("sub", a, b, lambda x, y: x - y,
                   lambda g, x, y, o: g, lambda g, x, y, o: -g)


@traceable
def mul(a, b):
    return _binary("mul", a, b, lambda x, y: x * y,
                   lambda g, x, y, o: g * y, lambda g, x, y, o: g * x)


@traceable
def div(a, b):
    return _binary("div", a, b, lambda x, y: x / y,
                   lambda g, x, y, o: g / y,
                   lambda g, x, y, o: -g * x / (y * y))


@traceable
def maximum(a, b):
    return _binary("maximum", a, b, np.maximum,
                   lambda g, x, y, o: g * (x >= y),
                   lambda g, x, y, o: g * (y > x))


@traceable
def minimum(a, b):
    return _binary("minimum", a, b, np.minimum,
                   lambda g, x, y, o: g * (x <= y),
                   lambda g, x, y, o: g * (y < x))


# Comparison ops: no gradients, bool outputs.
def _compare(name, a, b, fwd):
    a, b = astensor(a), astensor(b)
    if _any_meta(a, b):
        shape = np.broadcast_shapes(tuple(a.shape), tuple(b.shape))
        return _meta_result(name, shape, dtypes.bool_, (a, b))
    data = fwd(a.data, b.data)
    out = Tensor(data, dtype=dtypes.bool_)
    events.record_op(name, tuple(out.shape), dtypes.bool_, 0,
                     out.nbytes + a.nbytes + b.nbytes, None)
    return out


@traceable
def eq(a, b):
    return _compare("eq", a, b, np.equal)


@traceable
def ne(a, b):
    return _compare("ne", a, b, np.not_equal)


@traceable
def lt(a, b):
    return _compare("lt", a, b, np.less)


@traceable
def gt(a, b):
    return _compare("gt", a, b, np.greater)


# ---------------------------------------------------------------------- #
# Elementwise unary ops
# ---------------------------------------------------------------------- #
def _unary(name, x, fwd, bwd, flops_per_elem=1):
    x = astensor(x)
    if x.is_meta:
        return _meta_result(name, tuple(x.shape), x.dtype, (x,),
                            flops=x.numel() * flops_per_elem)
    data = fwd(x.data)

    def backward(grad):
        return (bwd(grad, x.data, data),)

    return _finalize(name, data, (x,), backward, dtype=x.dtype,
                     flops=data.size * flops_per_elem)


@traceable
def neg(x):
    return _unary("neg", x, lambda v: -v, lambda g, v, o: -g)


@traceable
def exp(x):
    return _unary("exp", x, np.exp, lambda g, v, o: g * o, flops_per_elem=4)


@traceable
def log(x):
    return _unary("log", x, np.log, lambda g, v, o: g / v, flops_per_elem=4)


@traceable
def sqrt(x):
    return _unary("sqrt", x, np.sqrt, lambda g, v, o: g / (2 * o),
                  flops_per_elem=2)


@traceable
def rsqrt(x):
    return _unary("rsqrt", x, lambda v: 1.0 / np.sqrt(v),
                  lambda g, v, o: -0.5 * g * o / v, flops_per_elem=3)


@traceable
def pow(x, exponent):
    if not isinstance(exponent, (int, float)):
        raise TypeError("pow: only scalar exponents are supported")
    return _unary(
        "pow", x,
        lambda v: v ** exponent,
        lambda g, v, o: g * exponent * v ** (exponent - 1),
        flops_per_elem=4,
    )


@traceable
def tanh(x):
    return _unary("tanh", x, np.tanh, lambda g, v, o: g * (1 - o * o),
                  flops_per_elem=6)


@traceable
def sigmoid(x):
    return _unary(
        "sigmoid", x,
        lambda v: 1.0 / (1.0 + np.exp(-v.astype(np.float32))).astype(v.dtype),
        lambda g, v, o: g * o * (1 - o),
        flops_per_elem=4,
    )


@traceable
def relu(x):
    return _unary("relu", x, lambda v: np.maximum(v, 0),
                  lambda g, v, o: g * (v > 0))


def _erf(v: np.ndarray) -> np.ndarray:
    return _sp_special.erf(v.astype(np.float32)).astype(v.dtype)


@traceable
def gelu(x):
    """Exact (erf) GELU, matching HF BERT's default activation."""

    def fwd(v):
        return (0.5 * v * (1.0 + _erf(v * _INV_SQRT2))).astype(v.dtype)

    def bwd(g, v, o):
        v32 = v.astype(np.float32)
        cdf = 0.5 * (1.0 + _sp_special.erf(v32 * _INV_SQRT2))
        pdf = np.exp(-0.5 * v32 * v32) / math.sqrt(2 * math.pi)
        return (g * (cdf + v32 * pdf)).astype(v.dtype)

    return _unary("gelu", x, fwd, bwd, flops_per_elem=10)


@traceable
def silu(x):
    """SiLU / swish, used by LLaMA's MLP."""

    def fwd(v):
        s = 1.0 / (1.0 + np.exp(-v.astype(np.float32)))
        return (v * s.astype(v.dtype)).astype(v.dtype)

    def bwd(g, v, o):
        s = 1.0 / (1.0 + np.exp(-v.astype(np.float32)))
        return (g * (s * (1 + v.astype(np.float32) * (1 - s)))).astype(v.dtype)

    return _unary("silu", x, fwd, bwd, flops_per_elem=5)


@traceable
def cast(x, dtype: DType):
    x = astensor(x)
    if x.is_meta:
        return _meta_result("cast", tuple(x.shape), dtype, (x,))
    data = x.data.astype(dtype.np_dtype)
    src_dtype = x.dtype

    def backward(grad):
        return (grad.astype(src_dtype.np_dtype),)

    return _finalize("cast", data, (x,), backward, dtype=dtype)


@traceable
def clone(x):
    x = astensor(x)
    if x.is_meta:
        return _meta_result("clone", tuple(x.shape), x.dtype, (x,))
    return _finalize("clone", x.data.copy(), (x,), lambda g: (g,),
                     dtype=x.dtype)


@traceable
def where(cond, a, b):
    cond, a, b = astensor(cond), astensor(a), astensor(b)
    out_dtype = promote(a.dtype, b.dtype)
    if _any_meta(cond, a, b):
        shape = np.broadcast_shapes(tuple(cond.shape), tuple(a.shape),
                                    tuple(b.shape))
        return _meta_result("where", shape, out_dtype, (cond, a, b))
    data = np.where(cond.data, a.data, b.data)

    def backward(grad):
        return (None,
                unbroadcast(grad * cond.data, tuple(a.shape)),
                unbroadcast(grad * ~cond.data, tuple(b.shape)))

    return _finalize("where", data, (cond, a, b), backward, dtype=out_dtype)


@traceable
def masked_fill(x, mask, value):
    x, mask = astensor(x), astensor(mask)
    if _any_meta(x, mask):
        shape = np.broadcast_shapes(tuple(x.shape), tuple(mask.shape))
        return _meta_result("masked_fill", shape, x.dtype, (x, mask))
    mask_b = np.broadcast_to(mask.data.astype(bool), x.data.shape)
    data = np.where(mask_b, np.asarray(value, x.data.dtype), x.data)

    def backward(grad):
        return (np.where(mask_b, 0, grad), None)

    return _finalize("masked_fill", data, (x, mask), backward, dtype=x.dtype)


# ---------------------------------------------------------------------- #
# Shape ops
# ---------------------------------------------------------------------- #
def _resolve_shape(shape, numel: int) -> tuple[int, ...]:
    shape = tuple(int(s) for s in shape)
    if shape.count(-1) > 1:
        raise ValueError("only one dimension can be inferred")
    if -1 in shape:
        known = 1
        for s in shape:
            if s != -1:
                known *= s
        shape = tuple(numel // known if s == -1 else s for s in shape)
    return shape


@traceable
def reshape(x, shape):
    x = astensor(x)
    new_shape = _resolve_shape(shape, x.numel())
    if x.is_meta:
        return _meta_result("reshape", new_shape, x.dtype, (x,), bytes_moved=0)
    old_shape = tuple(x.shape)
    data = x.data.reshape(new_shape)

    def backward(grad):
        return (grad.reshape(old_shape),)

    return _finalize("reshape", data, (x,), backward, dtype=x.dtype,
                     bytes_moved=0)


@traceable
def flatten(x, start_dim: int = 0, end_dim: int = -1):
    x = astensor(x)
    nd = x.ndim
    start = start_dim % nd
    end = end_dim % nd
    shape = tuple(x.shape)
    merged = 1
    for s in shape[start:end + 1]:
        merged *= s
    return reshape(x, shape[:start] + (merged,) + shape[end + 1:])


@traceable
def transpose(x, dim0: int, dim1: int):
    x = astensor(x)
    nd = x.ndim
    dim0, dim1 = dim0 % nd, dim1 % nd
    perm = list(range(nd))
    perm[dim0], perm[dim1] = perm[dim1], perm[dim0]
    return permute(x, tuple(perm))


@traceable
def permute(x, dims):
    x = astensor(x)
    dims = tuple(d % x.ndim for d in dims)
    if x.is_meta:
        shape = tuple(x.shape[d] for d in dims)
        return _meta_result("permute", shape, x.dtype, (x,),
                            bytes_moved=2 * x.nbytes)
    inverse = tuple(np.argsort(dims))
    data = np.transpose(x.data, dims)

    def backward(grad):
        return (np.transpose(grad, inverse),)

    return _finalize("permute", data, (x,), backward, dtype=x.dtype,
                     bytes_moved=2 * x.nbytes)


@traceable
def unsqueeze(x, dim: int):
    x = astensor(x)
    shape = list(x.shape)
    dim = dim % (len(shape) + 1)
    shape.insert(dim, 1)
    return reshape(x, tuple(shape))


@traceable
def squeeze(x, dim: int):
    x = astensor(x)
    shape = list(x.shape)
    dim = dim % len(shape)
    if shape[dim] != 1:
        raise ValueError(f"squeeze: dim {dim} has size {shape[dim]} != 1")
    del shape[dim]
    return reshape(x, tuple(shape))


@traceable
def expand(x, shape):
    x = astensor(x)
    target = tuple(
        int(x.shape[i - (len(shape) - x.ndim)]) if s == -1 else int(s)
        for i, s in enumerate(shape)
    )
    if x.is_meta:
        return _meta_result("expand", target, x.dtype, (x,), bytes_moved=0)
    data = np.broadcast_to(x.data, target).copy()
    src_shape = tuple(x.shape)

    def backward(grad):
        return (unbroadcast(grad, src_shape),)

    return _finalize("expand", data, (x,), backward, dtype=x.dtype)


@traceable
def getitem(x, index):
    if isinstance(x, dict):
        # Container passthrough: leaf modules may return pytree outputs
        # (e.g. an MoE routing dict) that traced code indexes by key.
        return x[index]
    x = astensor(x)
    if x.is_meta:
        # Infer the sliced shape with a zero-stride dummy array.
        dummy = np.broadcast_to(np.zeros(1, dtype=np.int8), tuple(x.shape))
        shape = dummy[index].shape
        return _meta_result("getitem", shape, x.dtype, (x,), bytes_moved=0)
    data = x.data[index]
    if np.isscalar(data) or data.ndim == 0:
        data = np.asarray(data)
    else:
        data = data.copy()
    src_shape = tuple(x.shape)
    src_np_dtype = x.data.dtype

    def backward(grad):
        full = np.zeros(src_shape, dtype=src_np_dtype)
        np.add.at(full, index, grad)
        return (full,)

    return _finalize("getitem", data, (x,), backward, dtype=x.dtype,
                     bytes_moved=_nbytes(data.shape, x.dtype) * 2)


@traceable
def cat(tensors: Sequence, dim: int = 0):
    tensors = [astensor(t) for t in tensors]
    dim = dim % tensors[0].ndim
    if _any_meta(*tensors):
        shape = list(tensors[0].shape)
        shape[dim] = builtins.sum(t.shape[dim] for t in tensors)
        return _meta_result("cat", tuple(shape), tensors[0].dtype, tensors)
    data = np.concatenate([t.data for t in tensors], axis=dim)
    sizes = [t.shape[dim] for t in tensors]

    def backward(grad):
        pieces = np.split(grad, np.cumsum(sizes)[:-1], axis=dim)
        return tuple(pieces)

    return _finalize("cat", data, tuple(tensors), backward,
                     dtype=tensors[0].dtype)


@traceable
def stack(tensors: Sequence, dim: int = 0):
    tensors = [unsqueeze(astensor(t), dim) for t in tensors]
    return cat(tensors, dim)


@traceable
def split(x, split_size, dim: int = 0):
    """Split into equal chunks of ``split_size`` (or by a list of sizes)."""
    x = astensor(x)
    dim = dim % x.ndim
    total = x.shape[dim]
    if isinstance(split_size, int):
        sizes = [split_size] * (total // split_size)
        if total % split_size:
            sizes.append(total % split_size)
    else:
        sizes = list(split_size)
    outputs = []
    start = 0
    for size in sizes:
        index = tuple(
            slice(start, start + size) if d == dim else slice(None)
            for d in range(x.ndim)
        )
        outputs.append(getitem(x, index))
        start += size
    return tuple(outputs)


@traceable
def chunk(x, chunks: int, dim: int = 0):
    x = astensor(x)
    dim_size = x.shape[dim % x.ndim]
    size = -(-dim_size // chunks)  # ceil division, torch semantics
    return split(x, size, dim)


# ---------------------------------------------------------------------- #
# Reductions
# ---------------------------------------------------------------------- #
def _reduce_shape(shape, dim, keepdim):
    if dim is None:
        return () if not keepdim else tuple(1 for _ in shape)
    dims = (dim,) if isinstance(dim, int) else tuple(dim)
    dims = tuple(d % len(shape) for d in dims)
    if keepdim:
        return tuple(1 if i in dims else s for i, s in enumerate(shape))
    return tuple(s for i, s in enumerate(shape) if i not in dims)


@traceable
def sum(x, dim=None, keepdim: bool = False):
    x = astensor(x)
    if x.is_meta:
        shape = _reduce_shape(tuple(x.shape), dim, keepdim)
        return _meta_result("sum", shape, x.dtype, (x,), flops=x.numel())
    axis = dim if dim is None else (dim if isinstance(dim, int) else tuple(dim))
    data = x.data.sum(axis=axis, keepdims=keepdim)
    src_shape = tuple(x.shape)

    def backward(grad):
        g = np.asarray(grad)
        if not keepdim and dim is not None:
            dims = (dim,) if isinstance(dim, int) else tuple(dim)
            for d in sorted(d % len(src_shape) for d in dims):
                g = np.expand_dims(g, d)
        return (np.broadcast_to(g, src_shape).astype(x.data.dtype),)

    return _finalize("sum", np.asarray(data), (x,), backward, dtype=x.dtype,
                     flops=x.numel())


@traceable
def mean(x, dim=None, keepdim: bool = False):
    x = astensor(x)
    if dim is None:
        count = x.numel()
    else:
        dims = (dim,) if isinstance(dim, int) else tuple(dim)
        count = 1
        for d in dims:
            count *= x.shape[d % x.ndim]
    return div(sum(x, dim, keepdim), float(count))


@traceable
def var(x, dim=None, keepdim: bool = False, unbiased: bool = False):
    x = astensor(x)
    centered = sub(x, mean(x, dim, keepdim=True))
    squared = mul(centered, centered)
    out = mean(squared, dim, keepdim)
    if unbiased:
        if dim is None:
            count = x.numel()
        else:
            dims = (dim,) if isinstance(dim, int) else tuple(dim)
            count = 1
            for d in dims:
                count *= x.shape[d % x.ndim]
        out = mul(out, count / builtins.max(count - 1, 1))
    return out


@traceable
def max(x, dim=None, keepdim: bool = False):
    x = astensor(x)
    if x.is_meta:
        shape = _reduce_shape(tuple(x.shape), dim, keepdim)
        return _meta_result("max", shape, x.dtype, (x,), flops=x.numel())
    data = x.data.max(axis=dim, keepdims=keepdim) if dim is not None \
        else x.data.max()
    src = x.data

    def backward(grad):
        if dim is None:
            mask = (src == src.max())
            return ((mask / mask.sum()) * grad,)
        expanded = np.asarray(data)
        g = np.asarray(grad)
        if not keepdim:
            expanded = np.expand_dims(expanded, dim)
            g = np.expand_dims(g, dim)
        mask = (src == expanded)
        counts = mask.sum(axis=dim, keepdims=True)
        return (mask / counts * g,)

    return _finalize("max", np.asarray(data), (x,), backward, dtype=x.dtype,
                     flops=x.numel())


@traceable
def argmax(x, dim=None):
    x = astensor(x)
    if x.is_meta:
        shape = _reduce_shape(tuple(x.shape), dim, False)
        return _meta_result("argmax", shape, dtypes.int64, (x,))
    data = np.argmax(x.data, axis=dim)
    out = Tensor(np.asarray(data), dtype=dtypes.int64)
    events.record_op("argmax", tuple(out.shape), dtypes.int64, x.numel(),
                     x.nbytes, None)
    return out


# ---------------------------------------------------------------------- #
# Linear algebra
# ---------------------------------------------------------------------- #
def _matmul_shape(a_shape, b_shape):
    if len(a_shape) < 1 or len(b_shape) < 1:
        raise ValueError("matmul requires at least 1-d operands")
    a_shape = (1,) + tuple(a_shape) if len(a_shape) == 1 else tuple(a_shape)
    b_shape = tuple(b_shape) + (1,) if len(b_shape) == 1 else tuple(b_shape)
    if a_shape[-1] != b_shape[-2]:
        raise ValueError(f"matmul shape mismatch: {a_shape} @ {b_shape}")
    batch = np.broadcast_shapes(a_shape[:-2], b_shape[:-2])
    return batch + (a_shape[-2], b_shape[-1]), a_shape[-1]


@traceable
def matmul(a, b):
    a, b = astensor(a), astensor(b)
    out_dtype = promote(a.dtype, b.dtype)
    out_shape, k = _matmul_shape(tuple(a.shape), tuple(b.shape))
    flops = 2 * _numel(out_shape) * k
    if _any_meta(a, b):
        return _meta_result("matmul", out_shape, out_dtype, (a, b),
                            flops=flops, meta={"kernel": "gemm"})
    data = a.data @ b.data

    def backward(grad):
        b_t = np.swapaxes(b.data, -1, -2) if b.ndim >= 2 else b.data
        a_t = np.swapaxes(a.data, -1, -2) if a.ndim >= 2 else a.data
        ga = grad @ b_t if b.ndim >= 2 else np.outer(grad, b.data)
        gb = a_t @ grad if a.ndim >= 2 else np.outer(a.data, grad)
        return (unbroadcast(ga, tuple(a.shape)),
                unbroadcast(gb, tuple(b.shape)))

    return _finalize("matmul", data, (a, b), backward, dtype=out_dtype,
                     flops=flops, meta={"kernel": "gemm"})


@traceable
def linear(x, weight, bias=None):
    """``x @ weight.T + bias`` with torch's (out_features, in_features) layout."""
    x, weight = astensor(x), astensor(weight)
    out_features, in_features = weight.shape
    if x.shape[-1] != in_features:
        raise ValueError(
            f"linear: input dim {x.shape[-1]} != weight in_features {in_features}"
        )
    out_shape = tuple(x.shape[:-1]) + (out_features,)
    tokens = _numel(x.shape[:-1])
    flops = 2 * tokens * in_features * out_features
    if _any_meta(x, weight) or (bias is not None and astensor(bias).is_meta):
        return _meta_result("linear", out_shape, x.dtype,
                            (x, weight) + ((bias,) if bias is not None else ()),
                            flops=flops, meta={"kernel": "gemm"})
    x2d = x.data.reshape(-1, in_features)
    data = x2d @ weight.data.T
    if bias is not None:
        bias = astensor(bias)
        data = data + bias.data
    data = data.reshape(out_shape)

    def backward(grad):
        g2d = grad.reshape(-1, out_features)
        gx = (g2d @ weight.data).reshape(tuple(x.shape))
        gw = g2d.T @ x2d
        gb = g2d.sum(axis=0) if bias is not None else None
        if bias is not None:
            return (gx, gw, gb)
        return (gx, gw)

    inputs = (x, weight) if bias is None else (x, weight, bias)
    return _finalize("linear", data, inputs, backward, dtype=x.dtype,
                     flops=flops, meta={"kernel": "gemm"})


# ---------------------------------------------------------------------- #
# Normalisation / softmax
# ---------------------------------------------------------------------- #
@traceable
def softmax(x, dim: int = -1):
    x = astensor(x)
    if x.is_meta:
        return _meta_result("softmax", tuple(x.shape), x.dtype, (x,),
                            flops=5 * x.numel())
    v = x.data.astype(np.float32)
    v = v - v.max(axis=dim, keepdims=True)
    e = np.exp(v)
    data = (e / e.sum(axis=dim, keepdims=True)).astype(x.data.dtype)

    def backward(grad):
        y = data.astype(np.float32)
        g = grad.astype(np.float32)
        inner = (g * y).sum(axis=dim, keepdims=True)
        return ((y * (g - inner)).astype(x.data.dtype),)

    return _finalize("softmax", data, (x,), backward, dtype=x.dtype,
                     flops=5 * x.numel())


@traceable
def log_softmax(x, dim: int = -1):
    x = astensor(x)
    if x.is_meta:
        return _meta_result("log_softmax", tuple(x.shape), x.dtype, (x,),
                            flops=5 * x.numel())
    v = x.data.astype(np.float32)
    v = v - v.max(axis=dim, keepdims=True)
    lse = np.log(np.exp(v).sum(axis=dim, keepdims=True))
    data = (v - lse).astype(x.data.dtype)

    def backward(grad):
        g = grad.astype(np.float32)
        soft = np.exp(data.astype(np.float32))
        return ((g - soft * g.sum(axis=dim, keepdims=True))
                .astype(x.data.dtype),)

    return _finalize("log_softmax", data, (x,), backward, dtype=x.dtype,
                     flops=5 * x.numel())


@traceable
def layer_norm(x, normalized_shape, weight=None, bias=None, eps: float = 1e-5):
    x = astensor(x)
    if isinstance(normalized_shape, int):
        normalized_shape = (normalized_shape,)
    ndims = len(normalized_shape)
    axes = tuple(range(x.ndim - ndims, x.ndim))
    inputs = [x]
    if weight is not None:
        inputs.append(astensor(weight))
    if bias is not None:
        inputs.append(astensor(bias))
    if _any_meta(*inputs):
        return _meta_result("layer_norm", tuple(x.shape), x.dtype,
                            tuple(inputs), flops=8 * x.numel())
    v = x.data.astype(np.float32)
    mu = v.mean(axis=axes, keepdims=True)
    diff = v - mu
    variance = (diff * diff).mean(axis=axes, keepdims=True)
    inv_std = 1.0 / np.sqrt(variance + eps)
    x_hat = diff * inv_std
    data = x_hat
    w = weight.data.astype(np.float32) if weight is not None else None
    if w is not None:
        data = data * w
    if bias is not None:
        data = data + bias.data.astype(np.float32)
    data = data.astype(x.data.dtype)
    n = 1
    for s in normalized_shape:
        n *= s

    def backward(grad):
        g = grad.astype(np.float32)
        g_hat = g * w if w is not None else g
        term1 = g_hat
        term2 = g_hat.mean(axis=axes, keepdims=True)
        term3 = x_hat * (g_hat * x_hat).mean(axis=axes, keepdims=True)
        gx = (inv_std * (term1 - term2 - term3)).astype(x.data.dtype)
        grads = [gx]
        if weight is not None:
            reduce_axes = tuple(range(x.ndim - ndims))
            grads.append((g * x_hat).sum(axis=reduce_axes)
                         .astype(weight.data.dtype))
        if bias is not None:
            reduce_axes = tuple(range(x.ndim - ndims))
            grads.append(g.sum(axis=reduce_axes).astype(bias.data.dtype))
        return tuple(grads)

    return _finalize("layer_norm", data, tuple(inputs), backward,
                     dtype=x.dtype, flops=8 * x.numel())


@traceable
def rms_norm(x, weight, eps: float = 1e-6):
    """RMSNorm (LLaMA): x / rms(x) * weight, no mean subtraction."""
    x, weight = astensor(x), astensor(weight)
    if _any_meta(x, weight):
        return _meta_result("rms_norm", tuple(x.shape), x.dtype, (x, weight),
                            flops=6 * x.numel())
    v = x.data.astype(np.float32)
    ms = (v * v).mean(axis=-1, keepdims=True)
    inv_rms = 1.0 / np.sqrt(ms + eps)
    x_hat = v * inv_rms
    w = weight.data.astype(np.float32)
    data = (x_hat * w).astype(x.data.dtype)
    n = x.shape[-1]

    def backward(grad):
        g = grad.astype(np.float32)
        gw_hat = g * w
        inner = (gw_hat * v).mean(axis=-1, keepdims=True)
        gx = (inv_rms * gw_hat - v * inner * inv_rms ** 3)
        reduce_axes = tuple(range(x.ndim - 1))
        gweight = (g * x_hat).sum(axis=reduce_axes)
        return (gx.astype(x.data.dtype), gweight.astype(weight.data.dtype))

    return _finalize("rms_norm", data, (x, weight), backward, dtype=x.dtype,
                     flops=6 * x.numel())


@traceable_mutating(writes=(1, 2), is_mutating=_batch_norm_mutates)
def batch_norm(x, running_mean, running_var, weight=None, bias=None,
               training: bool = False, momentum: float = 0.1,
               eps: float = 1e-5):
    """2d batch norm over (N, C, H, W); updates running stats in training."""
    x = astensor(x)
    inputs = [x] + [astensor(t) for t in (weight, bias) if t is not None]
    if _any_meta(*inputs):
        return _meta_result("batch_norm", tuple(x.shape), x.dtype,
                            tuple(inputs), flops=8 * x.numel())
    axes = (0, 2, 3) if x.ndim == 4 else (0,)
    v = x.data.astype(np.float32)
    if training:
        mu = v.mean(axis=axes)
        variance = v.var(axis=axes)
        if running_mean is not None:
            running_mean.data[...] = ((1 - momentum) * running_mean.data
                                      + momentum * mu)
            running_var.data[...] = ((1 - momentum) * running_var.data
                                     + momentum * variance)
    else:
        mu = running_mean.data.astype(np.float32)
        variance = running_var.data.astype(np.float32)
    shape = (1, -1, 1, 1) if x.ndim == 4 else (-1,)
    inv_std = 1.0 / np.sqrt(variance + eps)
    x_hat = (v - mu.reshape(shape)) * inv_std.reshape(shape)
    data = x_hat
    if weight is not None:
        data = data * weight.data.astype(np.float32).reshape(shape)
    if bias is not None:
        data = data + bias.data.astype(np.float32).reshape(shape)
    data = data.astype(x.data.dtype)
    count = x.numel() // x.shape[1]

    def backward(grad):
        g = grad.astype(np.float32)
        w = (weight.data.astype(np.float32).reshape(shape)
             if weight is not None else 1.0)
        g_hat = g * w
        if training:
            mean_g = g_hat.mean(axis=axes, keepdims=True)
            mean_gx = (g_hat * x_hat).mean(axis=axes, keepdims=True)
            gx = inv_std.reshape(shape) * (g_hat - mean_g - x_hat * mean_gx)
        else:
            gx = inv_std.reshape(shape) * g_hat
        grads = [gx.astype(x.data.dtype)]
        if weight is not None:
            grads.append((g * x_hat).sum(axis=axes).astype(weight.data.dtype))
        if bias is not None:
            grads.append(g.sum(axis=axes).astype(bias.data.dtype))
        return tuple(grads)

    return _finalize("batch_norm", data, tuple(inputs), backward,
                     dtype=x.dtype, flops=8 * x.numel())


# ---------------------------------------------------------------------- #
# Dropout
# ---------------------------------------------------------------------- #
@traceable
def dropout(x, p: float = 0.5, training: bool = True):
    x = astensor(x)
    if x.is_meta:
        return _meta_result("dropout", tuple(x.shape), x.dtype, (x,),
                            flops=x.numel())
    if not training or p == 0.0:
        return _finalize("dropout", x.data.copy(), (x,), lambda g: (g,),
                         dtype=x.dtype)
    keep = 1.0 - p
    mask = (frandom.generator().random(x.data.shape) < keep)
    scale = np.asarray(1.0 / keep, dtype=np.float32)
    data = (x.data * mask * scale).astype(x.data.dtype)

    def backward(grad):
        return ((grad * mask * scale).astype(x.data.dtype),)

    return _finalize("dropout", data, (x,), backward, dtype=x.dtype,
                     flops=x.numel())


# ---------------------------------------------------------------------- #
# Embedding
# ---------------------------------------------------------------------- #
@traceable
def embedding(indices, weight, padding_idx: int | None = None):
    indices, weight = astensor(indices), astensor(weight)
    vocab, hidden = weight.shape
    out_shape = tuple(indices.shape) + (hidden,)
    if _any_meta(indices, weight):
        return _meta_result("embedding", out_shape, weight.dtype,
                            (indices, weight),
                            bytes_moved=2 * _nbytes(out_shape, weight.dtype))
    idx = indices.data.astype(np.int64)
    data = weight.data[idx]

    def backward(grad):
        gw = np.zeros_like(weight.data, dtype=np.float32)
        np.add.at(gw, idx.reshape(-1), grad.reshape(-1, hidden))
        if padding_idx is not None:
            gw[padding_idx] = 0
        return (None, gw.astype(weight.data.dtype))

    return _finalize("embedding", data, (indices, weight), backward,
                     dtype=weight.dtype)


# ---------------------------------------------------------------------- #
# Losses
# ---------------------------------------------------------------------- #
@traceable
def cross_entropy(logits, targets, ignore_index: int = -100):
    """Mean cross-entropy over non-ignored targets.

    ``logits``: (N, C) float; ``targets``: (N,) int64.
    """
    logits, targets = astensor(logits), astensor(targets)
    if logits.is_meta or targets.is_meta:
        return _meta_result("cross_entropy", (), dtypes.float32,
                            (logits, targets), flops=6 * logits.numel())
    n, c = logits.shape
    idx = targets.data.astype(np.int64)
    valid = idx != ignore_index
    count = int(valid.sum())
    v = logits.data.astype(np.float32)
    v = v - v.max(axis=1, keepdims=True)
    lse = np.log(np.exp(v).sum(axis=1, keepdims=True))
    logp = v - lse
    safe_idx = np.where(valid, idx, 0)
    picked = logp[np.arange(n), safe_idx]
    loss = -(picked * valid).sum() / np.maximum(count, 1)

    def backward(grad):
        g = float(np.asarray(grad))
        soft = np.exp(logp)
        one_hot = np.zeros_like(soft)
        one_hot[np.arange(n), safe_idx] = 1.0
        gl = (soft - one_hot) * valid[:, None] / np.maximum(count, 1) * g
        return (gl.astype(logits.data.dtype), None)

    return _finalize("cross_entropy", np.asarray(loss, np.float32),
                     (logits, targets), backward, dtype=dtypes.float32,
                     flops=6 * logits.numel())


@traceable
def mse_loss(pred, target):
    pred, target = astensor(pred), astensor(target)
    diff = sub(pred, target)
    return mean(mul(diff, diff))


# ---------------------------------------------------------------------- #
# Convolution / pooling (for WideResNet)
# ---------------------------------------------------------------------- #
def _conv_out_size(size, kernel, stride, pad):
    return (size + 2 * pad - kernel) // stride + 1


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int):
    n, c, h, w = x.shape
    ho = _conv_out_size(h, kh, stride, pad)
    wo = _conv_out_size(w, kw, stride, pad)
    padded = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, (kh, kw), axis=(2, 3)
    )[:, :, ::stride, ::stride]  # (n, c, ho, wo, kh, kw)
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * ho * wo, c * kh * kw)
    return np.ascontiguousarray(cols), ho, wo


def _col2im(cols: np.ndarray, x_shape, kh, kw, stride, pad, ho, wo):
    n, c, h, w = x_shape
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=np.float32)
    cols6 = cols.reshape(n, ho, wo, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i:i + stride * ho:stride, j:j + stride * wo:stride] \
                += cols6[:, :, :, :, i, j]
    if pad:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


@traceable
def conv2d(x, weight, bias=None, stride: int = 1, padding: int = 0):
    x, weight = astensor(x), astensor(weight)
    out_ch, in_ch, kh, kw = weight.shape
    n, c, h, w = x.shape
    if c != in_ch:
        raise ValueError(f"conv2d channel mismatch: {c} vs {in_ch}")
    ho = _conv_out_size(h, kh, stride, padding)
    wo = _conv_out_size(w, kw, stride, padding)
    out_shape = (n, out_ch, ho, wo)
    flops = 2 * n * ho * wo * out_ch * in_ch * kh * kw
    inputs = (x, weight) if bias is None else (x, weight, astensor(bias))
    if _any_meta(*inputs):
        return _meta_result("conv2d", out_shape, x.dtype, inputs,
                            flops=flops, meta={"kernel": "gemm"})
    cols, ho, wo = _im2col(x.data.astype(np.float32), kh, kw, stride, padding)
    w_mat = weight.data.astype(np.float32).reshape(out_ch, -1)
    out_mat = cols @ w_mat.T
    if bias is not None:
        out_mat = out_mat + bias.data.astype(np.float32)
    data = (out_mat.reshape(n, ho, wo, out_ch).transpose(0, 3, 1, 2)
            .astype(x.data.dtype))

    def backward(grad):
        g_mat = (grad.transpose(0, 2, 3, 1).reshape(-1, out_ch)
                 .astype(np.float32))
        gw = (g_mat.T @ cols).reshape(weight.shape).astype(weight.data.dtype)
        g_cols = g_mat @ w_mat
        gx = _col2im(g_cols, x.data.shape, kh, kw, stride, padding, ho, wo) \
            .astype(x.data.dtype)
        if bias is not None:
            return (gx, gw, g_mat.sum(axis=0).astype(np.float32))
        return (gx, gw)

    return _finalize("conv2d", data, inputs, backward, dtype=x.dtype,
                     flops=flops, meta={"kernel": "gemm"})


@traceable
def max_pool2d(x, kernel_size: int, stride: int | None = None,
               padding: int = 0):
    x = astensor(x)
    stride = stride or kernel_size
    n, c, h, w = x.shape
    ho = _conv_out_size(h, kernel_size, stride, padding)
    wo = _conv_out_size(w, kernel_size, stride, padding)
    out_shape = (n, c, ho, wo)
    if x.is_meta:
        return _meta_result("max_pool2d", out_shape, x.dtype, (x,))
    padded = np.pad(x.data, ((0, 0), (0, 0), (padding, padding),
                             (padding, padding)),
                    constant_values=-np.inf)
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, (kernel_size, kernel_size), axis=(2, 3)
    )[:, :, ::stride, ::stride]
    data = windows.max(axis=(-2, -1))

    def backward(grad):
        gx_padded = np.zeros_like(padded, dtype=np.float32)
        for i in range(kernel_size):
            for j in range(kernel_size):
                patch = padded[:, :, i:i + stride * ho:stride,
                               j:j + stride * wo:stride]
                mask = patch == data
                gx_padded[:, :, i:i + stride * ho:stride,
                          j:j + stride * wo:stride] += mask * grad
        if padding:
            gx_padded = gx_padded[:, :, padding:-padding, padding:-padding]
        return (gx_padded.astype(x.data.dtype),)

    return _finalize("max_pool2d", data.astype(x.data.dtype), (x,), backward,
                     dtype=x.dtype)


@traceable
def adaptive_avg_pool2d(x, output_size: int = 1):
    if output_size != 1:
        raise NotImplementedError("only global average pooling is supported")
    x = astensor(x)
    pooled = mean(x, dim=(2, 3), keepdim=True)
    return pooled


# ---------------------------------------------------------------------- #
# Attention
# ---------------------------------------------------------------------- #
@traceable
def split_heads(x, num_heads: int):
    """(batch, seq, hidden) → (batch, heads, seq, head_dim).

    A single traceable op: the reshape needs runtime batch/seq sizes, which
    symbolic tracing cannot observe — wrapping the composite keeps attention
    modules traceable (the torch.fx ``size()`` problem, solved as the paper
    does by keeping shape logic inside opaque ops).
    """
    x = astensor(x)
    b, s, h = x.shape
    return permute(reshape(x, (b, s, num_heads, h // num_heads)),
                   (0, 2, 1, 3))


@traceable
def merge_heads(x):
    """(batch, heads, seq, head_dim) → (batch, seq, hidden)."""
    x = astensor(x)
    b, n, s, d = x.shape
    return reshape(permute(x, (0, 2, 1, 3)), (b, s, n * d))


@traceable
def position_ids(input_ids):
    """0..seq_len-1 position indices for ``input_ids``.

    A traceable composite: the sequence length is a runtime property, which
    raw ``.shape`` access on a Proxy cannot observe.
    """
    input_ids = astensor(input_ids)
    length = int(input_ids.shape[-1])
    if input_ids.is_meta:
        return Tensor.meta((length,), dtypes.int64)
    return Tensor(np.arange(length), dtype=dtypes.int64)


@traceable
def apply_causal_mask(scores, value: float = -1e9):
    """Mask out future positions of an attention-score matrix.

    A single traceable op (the mask depends on runtime sequence length),
    so decoder attention stays symbolically traceable and pattern-matchable.
    """
    scores = astensor(scores)
    s_q, s_k = scores.shape[-2], scores.shape[-1]
    mask = Tensor(np.triu(np.ones((s_q, s_k), dtype=bool), k=1))
    return masked_fill(scores, mask, value)



@traceable
def scaled_dot_product_attention(query, key, value, attn_mask=None,
                                 dropout_p: float = 0.0,
                                 is_causal: bool = False,
                                 scale: float | None = None,
                                 training: bool = True):
    """Memory-efficient attention kernel (flash-attention stand-in).

    Computes ``softmax(q @ k^T * scale + mask) @ v`` with fp32 accumulation.
    The simulator sees this as a *single fused kernel* that never
    materialises the (seq × seq) attention matrix — the defining property of
    FlashAttention that the paper's kernel-replacement schedules rely on.
    """
    q, k, v = astensor(query), astensor(key), astensor(value)
    b_shape = tuple(q.shape[:-2])
    s_q, d = q.shape[-2], q.shape[-1]
    s_k = k.shape[-2]
    out_shape = b_shape + (s_q, v.shape[-1])
    scale = scale if scale is not None else 1.0 / math.sqrt(d)
    flops = 4 * _numel(b_shape) * s_q * s_k * d
    if _any_meta(q, k, v):
        # Bytes: inputs + outputs only — no s_q*s_k intermediate.
        io_bytes = q.nbytes + k.nbytes + v.nbytes + _nbytes(out_shape, q.dtype)
        return _meta_result("sdpa", out_shape, q.dtype, (q, k, v),
                            flops=flops,
                            bytes_moved=io_bytes,
                            meta={"kernel": "flash_attention"})
    q32 = q.data.astype(np.float32)
    k32 = k.data.astype(np.float32)
    v32 = v.data.astype(np.float32)
    scores = q32 @ np.swapaxes(k32, -1, -2) * scale
    if is_causal:
        causal = np.triu(np.ones((s_q, s_k), dtype=bool), k=1)
        scores = np.where(causal, -1e9, scores)
    if attn_mask is not None:
        mask = astensor(attn_mask)
        scores = scores + mask.data.astype(np.float32)
    scores = scores - scores.max(axis=-1, keepdims=True)
    e = np.exp(scores)
    probs = e / e.sum(axis=-1, keepdims=True)
    if dropout_p > 0.0 and training:
        keep = 1.0 - dropout_p
        drop_mask = frandom.generator().random(probs.shape) < keep
        probs_used = probs * drop_mask / keep
    else:
        probs_used = probs
    data = (probs_used @ v32).astype(q.data.dtype)

    def backward(grad):
        g = grad.astype(np.float32)
        gv = np.swapaxes(probs_used, -1, -2) @ g
        gp = g @ np.swapaxes(v32, -1, -2)
        if dropout_p > 0.0 and training:
            gp = gp * drop_mask / (1.0 - dropout_p)
        inner = (gp * probs).sum(axis=-1, keepdims=True)
        gs = probs * (gp - inner)
        if is_causal:
            gs = np.where(np.triu(np.ones((s_q, s_k), dtype=bool), k=1), 0, gs)
        gq = (gs @ k32) * scale
        gk = (np.swapaxes(gs, -1, -2) @ q32) * scale
        return (gq.astype(q.data.dtype), gk.astype(k.data.dtype),
                gv.astype(v.data.dtype))

    io_bytes = q.nbytes + k.nbytes + v.nbytes + _nbytes(out_shape, q.dtype)
    return _finalize("sdpa", data, (q, k, v), backward, dtype=q.dtype,
                     flops=flops, bytes_moved=io_bytes,
                     meta={"kernel": "flash_attention"})
