"""Weight initializers (seeded through the global framework RNG)."""

from __future__ import annotations

import math

import numpy as np

from . import random as frandom
from .dtype import DType, float32
from .tensor import Tensor


def _make(shape, dtype: DType, device: str, sampler) -> Tensor:
    if device == "meta":
        return Tensor.meta(shape, dtype)
    data = sampler(frandom.generator()).astype(dtype.np_dtype)
    return Tensor(data, dtype=dtype)


def normal(shape, std: float = 0.02, dtype: DType = float32,
           device: str = "cpu") -> Tensor:
    return _make(shape, dtype, device,
                 lambda rng: rng.normal(0.0, std, shape))


def uniform(shape, low: float, high: float, dtype: DType = float32,
            device: str = "cpu") -> Tensor:
    return _make(shape, dtype, device,
                 lambda rng: rng.uniform(low, high, shape))


def zeros(shape, dtype: DType = float32, device: str = "cpu") -> Tensor:
    if device == "meta":
        return Tensor.meta(shape, dtype)
    return Tensor(np.zeros(shape, dtype.np_dtype), dtype=dtype)


def ones(shape, dtype: DType = float32, device: str = "cpu") -> Tensor:
    if device == "meta":
        return Tensor.meta(shape, dtype)
    return Tensor(np.ones(shape, dtype.np_dtype), dtype=dtype)


def kaiming_uniform(shape, fan_in: int, dtype: DType = float32,
                    device: str = "cpu") -> Tensor:
    """He-uniform, matching ``torch.nn.Linear``'s default reset."""
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    return uniform(shape, -bound, bound, dtype, device)


def xavier_uniform(shape, fan_in: int, fan_out: int, dtype: DType = float32,
                   device: str = "cpu") -> Tensor:
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return uniform(shape, -bound, bound, dtype, device)
