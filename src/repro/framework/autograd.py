"""Reverse-mode automatic differentiation over a dynamic tape.

Every differentiable op attaches a :class:`GradNode` to its output tensor.
``backward(tensor)`` walks the tape in reverse topological order, calling each
node's backward function and accumulating gradients into leaf tensors.

Design notes
------------
* Gradients are plain numpy arrays during propagation and are stored into
  ``tensor.grad`` as framework tensors only at leaves.
* ``no_grad()`` suppresses tape construction, mirroring PyTorch.
* Nodes hold references to their input tensors; tapes are short-lived so the
  resulting reference cycles are acceptable.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Sequence

import numpy as np

# Per-thread, like torch's grad mode: LocalCluster runs simulated ranks as
# threads, and one rank entering no_grad() (activation checkpointing's
# first forward) must not strip grad_fns off a concurrent rank's tape.
_GRAD_MODE = threading.local()


def is_grad_enabled() -> bool:
    return getattr(_GRAD_MODE, "enabled", True)


@contextmanager
def no_grad():
    """Context manager that disables tape construction (this thread)."""
    prev = is_grad_enabled()
    _GRAD_MODE.enabled = False
    try:
        yield
    finally:
        _GRAD_MODE.enabled = prev


@contextmanager
def enable_grad():
    """Context manager that re-enables tape construction (inside no_grad)."""
    prev = is_grad_enabled()
    _GRAD_MODE.enabled = True
    try:
        yield
    finally:
        _GRAD_MODE.enabled = prev


class GradNode:
    """A tape node: maps the output gradient to input gradients.

    Parameters
    ----------
    name:
        Op name, for debugging and error messages.
    inputs:
        The input *tensors* that may require grad, in positional order.
    backward_fn:
        Called with the incoming gradient (numpy array); returns a sequence of
        gradients aligned with ``inputs`` (entries may be None).
    """

    __slots__ = ("name", "inputs", "backward_fn")

    def __init__(self, name: str, inputs: Sequence, backward_fn: Callable):
        self.name = name
        self.inputs = tuple(inputs)
        self.backward_fn = backward_fn

    def __repr__(self) -> str:
        return f"GradNode({self.name})"


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Sums over leading broadcast dimensions and over axes that were size-1 in
    the original operand.
    """
    if grad.shape == tuple(shape):
        return grad
    # Sum away leading dims added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _topo_order(root) -> list:
    """Tensors reachable from ``root`` through grad_fn edges, topologically."""
    order: list = []
    visited: set[int] = set()
    stack = [(root, False)]
    while stack:
        tensor, processed = stack.pop()
        if processed:
            order.append(tensor)
            continue
        if id(tensor) in visited:
            continue
        visited.add(id(tensor))
        stack.append((tensor, True))
        if tensor.grad_fn is not None:
            for parent in tensor.grad_fn.inputs:
                if parent is not None and id(parent) not in visited:
                    stack.append((parent, False))
    return order


def backward(root, grad: np.ndarray | None = None) -> None:
    """Run reverse-mode differentiation from ``root``.

    ``grad`` defaults to ones (only valid when ``root`` is scalar-sized, as in
    PyTorch).  Leaf tensors with ``requires_grad`` accumulate into ``.grad``.
    """
    from .tensor import Tensor  # local import to avoid a cycle

    if root.is_meta:
        raise RuntimeError("cannot backprop through a meta tensor")
    if grad is None:
        if root.data.size != 1:
            raise RuntimeError(
                "grad can be implicitly created only for scalar outputs"
            )
        grad = np.ones_like(root.data)
    elif isinstance(grad, Tensor):
        grad = grad.data

    grads: dict[int, np.ndarray] = {id(root): np.asarray(grad, root.data.dtype)}
    for tensor in reversed(_topo_order(root)):
        out_grad = grads.pop(id(tensor), None)
        if out_grad is None:
            continue
        if tensor.grad_fn is None:
            if tensor.requires_grad:
                tensor._accumulate_grad(out_grad)
            continue
        in_grads = tensor.grad_fn.backward_fn(out_grad)
        inputs = tensor.grad_fn.inputs
        if len(in_grads) != len(inputs):
            raise RuntimeError(
                f"{tensor.grad_fn.name}: backward returned {len(in_grads)} "
                f"grads for {len(inputs)} inputs"
            )
        for parent, parent_grad in zip(inputs, in_grads):
            if parent is None or parent_grad is None:
                continue
            if not (parent.requires_grad or parent.grad_fn is not None):
                continue
            if parent.grad_fn is None:
                # Leaf: accumulate eagerly (PyTorch's AccumulateGrad
                # node) instead of parking the gradient until the tape
                # walk reaches the leaf.  Backward *hooks* then observe
                # ready parameter gradients — the contract bucketed
                # comm/compute overlap needs to launch gradient
                # all-reduces while backward is still running.
                parent._accumulate_grad(parent_grad)
                continue
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + parent_grad
            else:
                grads[key] = parent_grad
