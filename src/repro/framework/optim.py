"""Optimizers: SGD and AdamW with fp32 master weights for fp16 params.

AdamW keeps, per parameter, the fp32 master copy plus two fp32 moments —
the 16-bytes-per-parameter optimizer state that dominates large-model memory
and that ZeRO partitions.  The memory model in :mod:`repro.sim` mirrors this
layout exactly.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from . import dtype as dtypes
from .parameter import Parameter


class Optimizer:
    def __init__(self, params: Iterable[Parameter], defaults: dict):
        deduped: list[Parameter] = []
        seen: set[int] = set()
        for param in params:
            if id(param) not in seen:  # tied weights must update once
                seen.add(id(param))
                deduped.append(param)
        self.param_groups = [{"params": deduped, **defaults}]
        if not self.param_groups[0]["params"]:
            raise ValueError("optimizer got an empty parameter list")
        self.state: dict[int, dict] = {}

    def zero_grad(self) -> None:
        for group in self.param_groups:
            for param in group["params"]:
                param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def state_bytes_per_param(self) -> int:
        """Optimizer-state bytes per scalar parameter (for the memory model)."""
        raise NotImplementedError


class SGD(Optimizer):
    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, {"lr": lr, "momentum": momentum,
                                  "weight_decay": weight_decay})

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            momentum = group["momentum"]
            weight_decay = group["weight_decay"]
            for param in group["params"]:
                if param.grad is None:
                    continue
                grad = param.grad.data.astype(np.float32)
                if weight_decay:
                    grad = grad + weight_decay * param.data.astype(np.float32)
                if momentum:
                    state = self.state.setdefault(id(param), {})
                    buf = state.get("momentum")
                    buf = grad if buf is None else momentum * buf + grad
                    state["momentum"] = buf
                    grad = buf
                param.data -= (lr * grad).astype(param.data.dtype)

    def state_bytes_per_param(self) -> int:
        return 4 if self.param_groups[0]["momentum"] else 0


class AdamW(Optimizer):
    """Decoupled weight decay Adam (Loshchilov & Hutter)."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.01):
        super().__init__(params, {"lr": lr, "betas": betas, "eps": eps,
                                  "weight_decay": weight_decay})

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            beta1, beta2 = group["betas"]
            eps = group["eps"]
            weight_decay = group["weight_decay"]
            for param in group["params"]:
                if param.grad is None:
                    continue
                state = self.state.setdefault(id(param), {})
                if not state:
                    state["step"] = 0
                    state["exp_avg"] = np.zeros(param.shape, np.float32)
                    state["exp_avg_sq"] = np.zeros(param.shape, np.float32)
                    if param.dtype == dtypes.float16:
                        state["master"] = param.data.astype(np.float32)
                state["step"] += 1
                step = state["step"]
                grad = param.grad.data.astype(np.float32)
                master = state.get("master")
                target = master if master is not None \
                    else param.data.astype(np.float32)
                # Decoupled weight decay.
                target = target * (1.0 - lr * weight_decay)
                state["exp_avg"] = beta1 * state["exp_avg"] + (1 - beta1) * grad
                state["exp_avg_sq"] = (beta2 * state["exp_avg_sq"]
                                       + (1 - beta2) * grad * grad)
                bias1 = 1 - beta1 ** step
                bias2 = 1 - beta2 ** step
                step_size = lr / bias1
                denom = np.sqrt(state["exp_avg_sq"] / bias2) + eps
                target = target - step_size * state["exp_avg"] / denom
                if master is not None:
                    state["master"] = target
                    param.data[...] = target.astype(np.float16)
                else:
                    param.data[...] = target.astype(param.data.dtype)

    def state_bytes_per_param(self) -> int:
        # fp32 exp_avg + exp_avg_sq + master copy.
        return 12
