"""Device meshes: factor a world of ranks into tp × ep × dp × pp axes.

Follows the Megatron-LM convention by default: tensor-parallel groups are
innermost (consecutive ranks, so TP traffic stays on NVLink), then expert
parallel (the all-to-all-heavy MoE axis, kept close for the same reason),
then data parallel, then pipeline parallel outermost.  With ``ep = 1`` (the
default) the layout reduces exactly to the historical tp × dp × pp
factorization.

The axis order is itself a coordinate: :class:`ParallelConfig` carries an
``order`` tuple (innermost first) so the planner can sweep *placement* —
which axes sit inside an NVLink island and which cross the network — rather
than inheriting it as an accident of rank numbering.  See
``docs/topology.md``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .group import BaseGroup, RankContext, SimGroup, SingleGroup
from .topology import ClusterSpec

#: Megatron-style default placement, innermost axis first
DEFAULT_AXIS_ORDER = ("tp", "ep", "dp", "pp")


@dataclass(frozen=True)
class ParallelConfig:
    """How a world of GPUs is carved into parallel dimensions.

    ``ep`` (expert parallelism) is declared last so the historical
    positional form ``ParallelConfig(tp, dp, pp)`` keeps meaning what it
    always did.  ``order`` lists the axes innermost-first; the default is
    the Megatron placement (tp on NVLink, dp/pp across nodes).
    """

    tp: int = 1
    dp: int = 1
    pp: int = 1
    ep: int = 1
    order: tuple[str, ...] = DEFAULT_AXIS_ORDER

    def __post_init__(self):
        order = tuple(self.order)
        if sorted(order) != sorted(DEFAULT_AXIS_ORDER):
            raise ValueError(
                f"order must be a permutation of {DEFAULT_AXIS_ORDER}, "
                f"got {order!r}"
            )
        object.__setattr__(self, "order", order)

    @property
    def world_size(self) -> int:
        return self.tp * self.ep * self.dp * self.pp

    def validate(self, world_size: int) -> None:
        if self.world_size != world_size:
            raise ValueError(
                f"tp*ep*dp*pp = {self.world_size} != world size "
                f"{world_size}"
            )


def axis_stride(config: ParallelConfig, axis: str) -> int:
    """Rank stride between neighbours along one mesh axis.

    The stride is the product of all axis sizes placed *inside* ``axis``
    in ``config.order`` — 1 for the innermost axis.  Collective pricing
    uses it to decide which topology tier a group's traffic crosses.
    """
    stride = 1
    for name in config.order:
        if name == axis:
            return stride
        stride *= getattr(config, name)
    raise ValueError(f"unknown mesh axis: {axis!r}")


def axis_ranks(rank: int, config: ParallelConfig
               ) -> dict[str, tuple[int, ...]]:
    """Ranks sharing each mesh-axis group with ``rank``.

    This is the **single** source of truth for rank-group layout: both
    :class:`DeviceMesh` (functional collectives) and the simulator's
    collective pricing (:mod:`repro.sim.throughput`) derive their groups
    here, so the two can never drift apart.  With the default order the
    layout is ``rank = tp_idx + tp·(ep_idx + ep·(dp_idx + dp·pp_idx))``;
    a custom ``config.order`` permutes which axis owns which stride.
    """
    groups: dict[str, tuple[int, ...]] = {}
    stride = 1
    for axis in config.order:
        size = getattr(config, axis)
        idx = (rank // stride) % size
        base = rank - idx * stride
        groups[axis] = tuple(base + i * stride for i in range(size))
        stride *= size
    return groups


#: backwards-compatible alias (pre-unification internal name)
_axis_ranks = axis_ranks


class DeviceMesh:
    """Per-rank view of the parallel groups.

    For simulation, construct with ``sim=True`` (no cluster needed): groups
    are :class:`SimGroup` objects that only record communication events.
    For functional runs inside a LocalCluster, pass the rank context.
    """

    def __init__(self, config: ParallelConfig,
                 ctx: RankContext | None = None,
                 cluster_spec: ClusterSpec | None = None,
                 rank: int = 0, sim: bool = False):
        self.config = config
        self.cluster_spec = cluster_spec
        self.rank = ctx.rank if ctx is not None else rank
        axis = axis_ranks(self.rank, config)
        if ctx is not None:
            config.validate(ctx.world_size)
            self._groups = {
                name: ctx.group(ranks, tag=name)
                for name, ranks in axis.items()
            }
        elif sim:
            self._groups = {
                name: SimGroup(ranks, tag=name) if len(ranks) > 1
                else SingleGroup(tag=name)
                for name, ranks in axis.items()
            }
        else:
            if config.world_size != 1:
                raise ValueError(
                    "a multi-rank mesh needs a RankContext or sim=True"
                )
            self._groups = {name: SingleGroup(tag=name)
                            for name in ("tp", "ep", "dp", "pp")}

    @property
    def tp_group(self) -> BaseGroup:
        return self._groups["tp"]

    @property
    def ep_group(self) -> BaseGroup:
        return self._groups["ep"]

    @property
    def dp_group(self) -> BaseGroup:
        return self._groups["dp"]

    @property
    def pp_group(self) -> BaseGroup:
        return self._groups["pp"]

    def group(self, name: str) -> BaseGroup:
        return self._groups[name]

    @property
    def pp_stage(self) -> int:
        c = self.config
        return (self.rank // axis_stride(c, "pp")) % c.pp

    def __repr__(self) -> str:
        c = self.config
        return (f"DeviceMesh(rank={self.rank}, tp={c.tp}, ep={c.ep}, "
                f"dp={c.dp}, pp={c.pp})")


def single_device_mesh() -> DeviceMesh:
    """The default mesh: one device, all groups trivial."""
    return DeviceMesh(ParallelConfig(1, 1, 1))
