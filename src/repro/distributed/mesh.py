"""Device meshes: factor a world of ranks into tp × ep × dp × pp axes.

Follows the Megatron-LM convention: tensor-parallel groups are innermost
(consecutive ranks, so TP traffic stays on NVLink), then expert parallel
(the all-to-all-heavy MoE axis, kept close for the same reason), then data
parallel, then pipeline parallel outermost.  With ``ep = 1`` (the default)
the layout reduces exactly to the historical tp × dp × pp factorization.
"""

from __future__ import annotations

from dataclasses import dataclass

from .group import BaseGroup, RankContext, SimGroup, SingleGroup
from .topology import ClusterSpec


@dataclass(frozen=True)
class ParallelConfig:
    """How a world of GPUs is carved into parallel dimensions.

    ``ep`` (expert parallelism) is declared last so the historical
    positional form ``ParallelConfig(tp, dp, pp)`` keeps meaning what it
    always did.
    """

    tp: int = 1
    dp: int = 1
    pp: int = 1
    ep: int = 1

    @property
    def world_size(self) -> int:
        return self.tp * self.ep * self.dp * self.pp

    def validate(self, world_size: int) -> None:
        if self.world_size != world_size:
            raise ValueError(
                f"tp*ep*dp*pp = {self.world_size} != world size "
                f"{world_size}"
            )


def axis_ranks(rank: int, config: ParallelConfig
               ) -> dict[str, tuple[int, ...]]:
    """Ranks sharing each mesh-axis group with ``rank``.

    This is the **single** source of truth for rank-group layout: both
    :class:`DeviceMesh` (functional collectives) and the simulator's
    collective pricing (:mod:`repro.sim.throughput`) derive their groups
    here, so the two can never drift apart.  Layout (innermost first):
    ``rank = tp_idx + tp·(ep_idx + ep·(dp_idx + dp·pp_idx))``.
    """
    tp, ep, dp, pp = config.tp, config.ep, config.dp, config.pp
    tp_idx = rank % tp
    ep_idx = (rank // tp) % ep
    dp_idx = (rank // (tp * ep)) % dp
    pp_idx = rank // (tp * ep * dp)

    def build(axis_size: int, stride: int, axis_idx: int
              ) -> tuple[int, ...]:
        base = rank - axis_idx * stride
        return tuple(base + i * stride for i in range(axis_size))

    return {
        "tp": build(tp, 1, tp_idx),
        "ep": build(ep, tp, ep_idx),
        "dp": build(dp, tp * ep, dp_idx),
        "pp": build(pp, tp * ep * dp, pp_idx),
    }


#: backwards-compatible alias (pre-unification internal name)
_axis_ranks = axis_ranks


class DeviceMesh:
    """Per-rank view of the parallel groups.

    For simulation, construct with ``sim=True`` (no cluster needed): groups
    are :class:`SimGroup` objects that only record communication events.
    For functional runs inside a LocalCluster, pass the rank context.
    """

    def __init__(self, config: ParallelConfig,
                 ctx: RankContext | None = None,
                 cluster_spec: ClusterSpec | None = None,
                 rank: int = 0, sim: bool = False):
        self.config = config
        self.cluster_spec = cluster_spec
        self.rank = ctx.rank if ctx is not None else rank
        axis = axis_ranks(self.rank, config)
        if ctx is not None:
            config.validate(ctx.world_size)
            self._groups = {
                name: ctx.group(ranks, tag=name)
                for name, ranks in axis.items()
            }
        elif sim:
            self._groups = {
                name: SimGroup(ranks, tag=name) if len(ranks) > 1
                else SingleGroup(tag=name)
                for name, ranks in axis.items()
            }
        else:
            if config.world_size != 1:
                raise ValueError(
                    "a multi-rank mesh needs a RankContext or sim=True"
                )
            self._groups = {name: SingleGroup(tag=name)
                            for name in ("tp", "ep", "dp", "pp")}

    @property
    def tp_group(self) -> BaseGroup:
        return self._groups["tp"]

    @property
    def ep_group(self) -> BaseGroup:
        return self._groups["ep"]

    @property
    def dp_group(self) -> BaseGroup:
        return self._groups["dp"]

    @property
    def pp_group(self) -> BaseGroup:
        return self._groups["pp"]

    def group(self, name: str) -> BaseGroup:
        return self._groups[name]

    @property
    def pp_stage(self) -> int:
        c = self.config
        return self.rank // (c.tp * c.ep * c.dp)

    def __repr__(self) -> str:
        c = self.config
        return (f"DeviceMesh(rank={self.rank}, tp={c.tp}, ep={c.ep}, "
                f"dp={c.dp}, pp={c.pp})")


def single_device_mesh() -> DeviceMesh:
    """The default mesh: one device, all groups trivial."""
    return DeviceMesh(ParallelConfig(1, 1, 1))
