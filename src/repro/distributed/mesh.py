"""Device meshes: factor a world of ranks into tp × dp × pp axes.

Follows the Megatron-LM convention: tensor-parallel groups are innermost
(consecutive ranks, so TP traffic stays on NVLink), then data parallel, then
pipeline parallel outermost.
"""

from __future__ import annotations

from dataclasses import dataclass

from .group import BaseGroup, RankContext, SimGroup, SingleGroup
from .topology import ClusterSpec


@dataclass(frozen=True)
class ParallelConfig:
    """How a world of GPUs is carved into parallel dimensions."""

    tp: int = 1
    dp: int = 1
    pp: int = 1

    @property
    def world_size(self) -> int:
        return self.tp * self.dp * self.pp

    def validate(self, world_size: int) -> None:
        if self.world_size != world_size:
            raise ValueError(
                f"tp*dp*pp = {self.world_size} != world size {world_size}"
            )


def axis_ranks(rank: int, config: ParallelConfig
               ) -> dict[str, tuple[int, ...]]:
    """Ranks sharing each mesh-axis group with ``rank``.

    This is the **single** source of truth for rank-group layout: both
    :class:`DeviceMesh` (functional collectives) and the simulator's
    collective pricing (:mod:`repro.sim.throughput`) derive their groups
    here, so the two can never drift apart.
    """
    tp, dp, pp = config.tp, config.dp, config.pp
    tp_idx = rank % tp
    dp_idx = (rank // tp) % dp
    pp_idx = rank // (tp * dp)
    tp_group = tuple(pp_idx * tp * dp + dp_idx * tp + i for i in range(tp))
    dp_group = tuple(pp_idx * tp * dp + j * tp + tp_idx for j in range(dp))
    pp_group = tuple(k * tp * dp + dp_idx * tp + tp_idx for k in range(pp))
    return {"tp": tp_group, "dp": dp_group, "pp": pp_group}


#: backwards-compatible alias (pre-unification internal name)
_axis_ranks = axis_ranks


class DeviceMesh:
    """Per-rank view of the parallel groups.

    For simulation, construct with ``sim=True`` (no cluster needed): groups
    are :class:`SimGroup` objects that only record communication events.
    For functional runs inside a LocalCluster, pass the rank context.
    """

    def __init__(self, config: ParallelConfig,
                 ctx: RankContext | None = None,
                 cluster_spec: ClusterSpec | None = None,
                 rank: int = 0, sim: bool = False):
        self.config = config
        self.cluster_spec = cluster_spec
        self.rank = ctx.rank if ctx is not None else rank
        axis = axis_ranks(self.rank, config)
        if ctx is not None:
            config.validate(ctx.world_size)
            self._groups = {
                name: ctx.group(ranks, tag=name)
                for name, ranks in axis.items()
            }
        elif sim:
            self._groups = {
                name: SimGroup(ranks, tag=name) if len(ranks) > 1
                else SingleGroup(tag=name)
                for name, ranks in axis.items()
            }
        else:
            if config.world_size != 1:
                raise ValueError(
                    "a multi-rank mesh needs a RankContext or sim=True"
                )
            self._groups = {name: SingleGroup(tag=name)
                            for name in ("tp", "dp", "pp")}

    @property
    def tp_group(self) -> BaseGroup:
        return self._groups["tp"]

    @property
    def dp_group(self) -> BaseGroup:
        return self._groups["dp"]

    @property
    def pp_group(self) -> BaseGroup:
        return self._groups["pp"]

    def group(self, name: str) -> BaseGroup:
        return self._groups[name]

    @property
    def pp_stage(self) -> int:
        return self.rank // (self.config.tp * self.config.dp)

    def __repr__(self) -> str:
        c = self.config
        return f"DeviceMesh(rank={self.rank}, tp={c.tp}, dp={c.dp}, pp={c.pp})"


def single_device_mesh() -> DeviceMesh:
    """The default mesh: one device, all groups trivial."""
    return DeviceMesh(ParallelConfig(1, 1, 1))
