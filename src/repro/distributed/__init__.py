"""repro.distributed — simulated multi-rank execution and collectives."""

from .cluster import ClusterError, Communicator, LocalCluster
from .group import (
    BaseGroup,
    RankContext,
    SimGroup,
    SingleGroup,
    ThreadGroup,
)
from .mesh import (
    DEFAULT_AXIS_ORDER,
    DeviceMesh,
    ParallelConfig,
    axis_ranks,
    axis_stride,
    single_device_mesh,
)
from .topology import (
    A100_NODE,
    GBPS,
    H100_NODE,
    P3DN_NODE,
    ClusterSpec,
    GPUSpec,
    LinkTier,
    a100_cluster,
    h100_cluster,
    p3dn_cluster,
)

__all__ = [
    "LocalCluster", "Communicator", "ClusterError",
    "BaseGroup", "SingleGroup", "ThreadGroup", "SimGroup", "RankContext",
    "DeviceMesh", "ParallelConfig", "axis_ranks", "axis_stride",
    "DEFAULT_AXIS_ORDER", "single_device_mesh",
    "GPUSpec", "ClusterSpec", "LinkTier", "GBPS",
    "P3DN_NODE", "p3dn_cluster",
    "A100_NODE", "H100_NODE", "a100_cluster", "h100_cluster",
]
