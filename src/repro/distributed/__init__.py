"""repro.distributed — simulated multi-rank execution and collectives."""

from .cluster import ClusterError, Communicator, LocalCluster
from .group import (
    BaseGroup,
    RankContext,
    SimGroup,
    SingleGroup,
    ThreadGroup,
)
from .mesh import DeviceMesh, ParallelConfig, axis_ranks, single_device_mesh
from .topology import P3DN_NODE, ClusterSpec, GPUSpec, p3dn_cluster

__all__ = [
    "LocalCluster", "Communicator", "ClusterError",
    "BaseGroup", "SingleGroup", "ThreadGroup", "SimGroup", "RankContext",
    "DeviceMesh", "ParallelConfig", "axis_ranks", "single_device_mesh",
    "GPUSpec", "ClusterSpec", "P3DN_NODE", "p3dn_cluster",
]
