"""Process groups: the communication handles Slapo's sync primitives use.

Three implementations share one interface:

* :class:`ThreadGroup` — real data movement between LocalCluster threads
  (functional testing, the verifier).
* :class:`SimGroup` — meta-device execution; collectives only record
  communication events for the performance simulator.
* :class:`SingleGroup` — world size 1; every collective is the identity.

All collectives accept framework Tensors (with autograd: e.g. the backward
of a forward all-reduce is the identity, exactly as in Megatron-LM's
``_ReduceFromModelParallelRegion``) and raw numpy arrays (as used inside
backward hooks).
"""

from __future__ import annotations

import numpy as np

from repro.framework import events
from repro.framework.autograd import GradNode, is_grad_enabled
from repro.framework.tensor import Tensor


class RankContext:
    """Per-thread handle inside a LocalCluster run."""

    def __init__(self, rank: int, cluster):
        self.rank = rank
        self.cluster = cluster
        self.world_size = cluster.world_size

    def group(self, ranks=None, tag: str = "world") -> "ThreadGroup":
        ranks = tuple(ranks) if ranks is not None \
            else tuple(range(self.world_size))
        return ThreadGroup(self.rank, ranks, self.cluster.communicator(ranks),
                           tag=tag)

    def world_group(self) -> "ThreadGroup":
        return self.group()


class BaseGroup:
    """Common surface; see module docstring."""

    tag: str = "world"
    size: int = 1
    rank: int = 0
    ranks: tuple[int, ...] = (0,)

    # Subclasses implement the raw numpy-level primitives. ------------- #
    def _all_reduce_array(self, array: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _all_gather_array(self, array: np.ndarray, axis: int) -> np.ndarray:
        raise NotImplementedError

    def _reduce_scatter_array(self, array: np.ndarray, axis: int
                              ) -> np.ndarray:
        raise NotImplementedError

    def _broadcast_array(self, array, src: int):
        raise NotImplementedError

    def _all_to_all_array(self, array: np.ndarray, axis: int) -> np.ndarray:
        raise NotImplementedError

    def _record(self, kind: str, nbytes: int) -> None:
        events.record_comm(kind, nbytes, self.size,
                           meta={"tag": self.tag, "ranks": self.ranks})

    # Tensor-level collectives with autograd. --------------------------- #
    def all_reduce(self, value):
        """Sum across the group. Backward: identity."""
        if isinstance(value, np.ndarray):
            self._record("all_reduce", value.nbytes)
            return self._all_reduce_array(value)
        tensor: Tensor = value
        self._record("all_reduce", tensor.nbytes)
        if tensor.is_meta:
            return tensor
        out = Tensor(self._all_reduce_array(tensor.data), dtype=tensor.dtype)
        if is_grad_enabled() and (tensor.requires_grad or tensor.grad_fn):
            out.grad_fn = GradNode("all_reduce", (tensor,), lambda g: (g,))
            out.requires_grad = True
        return out

    def all_gather(self, value, axis: int = -1):
        """Concatenate shards along ``axis``. Backward: take own slice."""
        if isinstance(value, np.ndarray):
            self._record("all_gather", value.nbytes * self.size)
            return self._all_gather_array(value, axis)
        tensor: Tensor = value
        self._record("all_gather", tensor.nbytes * self.size)
        if tensor.is_meta:
            shape = list(tensor.shape)
            shape[axis] *= self.size
            return Tensor.meta(tuple(shape), tensor.dtype)
        out_data = self._all_gather_array(tensor.data, axis)
        out = Tensor(out_data, dtype=tensor.dtype)
        if is_grad_enabled() and (tensor.requires_grad or tensor.grad_fn):
            local = self.ranks.index(self.rank) if self.rank in self.ranks \
                else 0
            shard = tensor.shape[axis]

            def backward(grad):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(local * shard, (local + 1) * shard)
                return (grad[tuple(index)],)

            out.grad_fn = GradNode("all_gather", (tensor,), backward)
            out.requires_grad = True
        return out

    def reduce_scatter(self, value, axis: int = -1):
        """Sum then split along ``axis``; each rank keeps one shard."""
        if isinstance(value, np.ndarray):
            self._record("reduce_scatter", value.nbytes)
            return self._reduce_scatter_array(value, axis)
        tensor: Tensor = value
        self._record("reduce_scatter", tensor.nbytes)
        if tensor.is_meta:
            shape = list(tensor.shape)
            shape[axis] //= self.size
            return Tensor.meta(tuple(shape), tensor.dtype)
        out = Tensor(self._reduce_scatter_array(tensor.data, axis),
                     dtype=tensor.dtype)
        if is_grad_enabled() and (tensor.requires_grad or tensor.grad_fn):
            def backward(grad):
                return (self._all_gather_array(grad, axis),)

            out.grad_fn = GradNode("reduce_scatter", (tensor,), backward)
            out.requires_grad = True
        return out

    def broadcast(self, value, src: int = 0):
        """Share ``src``'s value with the group.

        ``src`` is the source's **local index** within this group (0 ≤
        src < size), not a global rank — the two differ on strided
        groups (e.g. dp groups under tp > 1).
        """
        if isinstance(value, np.ndarray):
            self._record("broadcast", value.nbytes)
            return self._broadcast_array(value, src)
        tensor: Tensor = value
        self._record("broadcast", tensor.nbytes)
        if tensor.is_meta:
            return tensor
        return Tensor(np.array(self._broadcast_array(tensor.data, src)),
                      dtype=tensor.dtype)

    def _check_even_split(self, shape, axis: int) -> None:
        if not shape:
            raise ValueError("all_to_all needs at least a 1-d value")
        axis = axis % len(shape)
        if shape[axis] % self.size != 0:
            raise ValueError(
                f"all_to_all requires an even split: dimension "
                f"{shape[axis]} (axis {axis}) is not divisible by the "
                f"group size {self.size}"
            )

    def all_to_all(self, value, axis: int = 0):
        """Exchange equal chunks along ``axis`` (expert-parallel dispatch).

        Chunk ``j`` of this rank's value goes to the group's ``j``-th rank
        (local group order, the same local-index discipline as
        ``broadcast``); the result concatenates the chunks received from
        every peer in group-rank order, so shapes are preserved.  Uneven
        splits are rejected.  Backward: an all-to-all is its own adjoint —
        the gradient chunk produced for output position ``j`` travels back
        to rank ``j``, which is exactly another all-to-all.
        """
        if isinstance(value, np.ndarray):
            self._check_even_split(value.shape, axis)
            self._record("all_to_all", value.nbytes)
            return self._all_to_all_array(value, axis)
        tensor: Tensor = value
        self._check_even_split(tuple(tensor.shape), axis)
        self._record("all_to_all", tensor.nbytes)
        if tensor.is_meta:
            return tensor  # equal chunks in, equal chunks out
        out = Tensor(self._all_to_all_array(tensor.data, axis),
                     dtype=tensor.dtype)
        if is_grad_enabled() and (tensor.requires_grad or tensor.grad_fn):
            def backward(grad):
                self._record("all_to_all", grad.nbytes)
                return (self._all_to_all_array(grad, axis),)

            out.grad_fn = GradNode("all_to_all", (tensor,), backward)
            out.requires_grad = True
        return out

    def copy_to_group(self, value):
        """Identity forward, all-reduce backward.

        Placed at the *input* of a tensor-parallel region (Megatron's
        ``_CopyToModelParallelRegion``).
        """
        tensor: Tensor = value
        if tensor.is_meta or not isinstance(tensor, Tensor):
            return tensor
        out = Tensor(tensor.data, dtype=tensor.dtype)
        if is_grad_enabled() and (tensor.requires_grad or tensor.grad_fn):
            def backward(grad):
                self._record("all_reduce", grad.nbytes)
                return (self._all_reduce_array(grad),)

            out.grad_fn = GradNode("copy_to_group", (tensor,), backward)
            out.requires_grad = True
        return out

    def barrier(self) -> None:
        pass


class SingleGroup(BaseGroup):
    """World of one: all collectives are identities."""

    def __init__(self, tag: str = "world"):
        self.tag = tag
        self.size = 1
        self.rank = 0
        self.ranks = (0,)

    def _all_reduce_array(self, array):
        return array

    def _all_gather_array(self, array, axis):
        return array

    def _reduce_scatter_array(self, array, axis):
        return array

    def _broadcast_array(self, array, src):
        return array

    def _all_to_all_array(self, array, axis):
        return array

    def _record(self, kind, nbytes):
        pass  # no communication happens in a world of one


class ThreadGroup(BaseGroup):
    """Real rendezvous collectives between LocalCluster threads."""

    def __init__(self, rank: int, ranks: tuple[int, ...], communicator,
                 tag: str = "group"):
        self.rank = rank
        self.ranks = tuple(ranks)
        self.size = len(self.ranks)
        self.tag = tag
        self._comm = communicator

    def _all_reduce_array(self, array):
        return self._comm.all_reduce(self.rank, array)

    def _all_gather_array(self, array, axis):
        return self._comm.all_gather(self.rank, array, axis)

    def _reduce_scatter_array(self, array, axis):
        return self._comm.reduce_scatter(self.rank, array, axis)

    def _broadcast_array(self, array, src):
        # ``src`` is the *local* index within this group (the convention
        # of every caller: ZeRO owners are ``index % group.size``); the
        # communicator speaks global ranks.  Translating here keeps
        # broadcasts correct on strided groups — e.g. a data-parallel
        # group of ranks (0, 2) when tp > 1 — where the two numberings
        # no longer coincide.
        return self._comm.broadcast(self.rank, array, self.ranks[src])

    def _all_to_all_array(self, array, axis):
        return self._comm.all_to_all(self.rank, array, axis)

    def barrier(self) -> None:
        self._comm.barrier(self.rank)

    def send(self, dst: int, value) -> None:
        self._comm.send(self.rank, dst, value)

    def recv(self, src: int):
        return self._comm.recv(self.rank, src)


class SimGroup(BaseGroup):
    """Meta-device group: no data motion, only cost events.

    Acts as rank 0 of the group; tensors passing through keep (or reshape)
    their meta shapes so downstream shape inference stays correct.
    """

    def __init__(self, ranks: tuple[int, ...], tag: str = "group"):
        self.ranks = tuple(ranks)
        self.size = len(self.ranks)
        self.rank = self.ranks[0]
        self.tag = tag

    def _all_reduce_array(self, array):
        return array

    def _all_gather_array(self, array, axis):
        reps = [1] * array.ndim
        reps[axis] = self.size
        return np.tile(array, reps)

    def _reduce_scatter_array(self, array, axis):
        return np.split(array, self.size, axis=axis)[0]

    def _broadcast_array(self, array, src):
        return array

    def _all_to_all_array(self, array, axis):
        return array  # chunk sizes match, so the shape is unchanged
