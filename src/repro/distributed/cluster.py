"""LocalCluster: run N simulated ranks as lock-stepped threads.

Every rank executes the same function (SPMD); collectives rendezvous through
a shared :class:`Communicator`.  Reductions are performed in rank order by a
single thread, so results are bit-identical across runs — which the
differential-testing verifier (paper §3.5) depends on.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable

import numpy as np


class ClusterError(RuntimeError):
    """Raised on the caller when any rank fails.

    ``original`` carries the failing rank's exception so callers (the
    verifier, the schedule fuzzer) can classify the root cause without
    parsing the message; it is also chained as ``__cause__``.
    """

    def __init__(self, message: str, original: Exception | None = None):
        super().__init__(message)
        self.original = original


class Communicator:
    """Rendezvous point for one group of ranks."""

    def __init__(self, ranks: tuple[int, ...]):
        self.ranks = tuple(ranks)
        self.size = len(ranks)
        self._barrier = threading.Barrier(self.size)
        self._slots: dict[int, np.ndarray] = {}
        self._result = None
        self._p2p: dict[tuple[int, int], queue.Queue] = {}
        self._p2p_lock = threading.Lock()

    def _local_index(self, rank: int) -> int:
        return self.ranks.index(rank)

    def _exchange(self, rank: int, value, combine: Callable):
        """Generic gather → combine-on-first-rank → share."""
        self._slots[rank] = value
        self._barrier.wait()
        if self._local_index(rank) == 0:
            ordered = [self._slots[r] for r in self.ranks]
            self._result = combine(ordered)
        self._barrier.wait()
        result = self._result
        self._barrier.wait()  # ensure everyone read before next op reuses
        return result

    def all_reduce(self, rank: int, array: np.ndarray) -> np.ndarray:
        def combine(arrays):
            acc = arrays[0].astype(np.float32, copy=True)
            for other in arrays[1:]:
                acc += other
            return acc

        return self._exchange(rank, array, combine).astype(array.dtype)

    def all_gather(self, rank: int, array: np.ndarray, axis: int
                   ) -> np.ndarray:
        return self._exchange(
            rank, array, lambda arrays: np.concatenate(arrays, axis=axis)
        ).copy()

    def reduce_scatter(self, rank: int, array: np.ndarray, axis: int
                       ) -> np.ndarray:
        def combine(arrays):
            acc = arrays[0].astype(np.float32, copy=True)
            for other in arrays[1:]:
                acc += other
            return acc

        summed = self._exchange(rank, array, combine)
        shards = np.split(summed, self.size, axis=axis)
        return shards[self._local_index(rank)].astype(array.dtype)

    def broadcast(self, rank: int, array, src: int):
        def combine(arrays):
            # Copy: returning the source rank's buffer by reference lets
            # receivers (which copy *after* the final barrier) race any
            # later in-place mutation by the source — e.g. an optimizer
            # broadcasting parameters it keeps updating.
            return np.array(arrays[self._local_index(src)])

        return self._exchange(rank, array, combine)

    def all_to_all(self, rank: int, array: np.ndarray, axis: int
                   ) -> np.ndarray:
        """Exchange equal chunks: chunk ``j`` of ``array`` (along ``axis``)
        goes to the group's ``j``-th rank; the result concatenates the
        chunks received from every peer, in group-rank order.

        Received chunks are **copied** before the closing barrier — a
        zero-copy view of a peer's send buffer would let the receiver race
        any later in-place mutation by that peer (the same aliasing bug
        class ``broadcast`` fixes above).
        """
        self._slots[rank] = np.split(array, self.size, axis=axis)
        self._barrier.wait()
        mine = self._local_index(rank)
        received = [np.array(self._slots[peer][mine]) for peer in self.ranks]
        result = np.concatenate(received, axis=axis)
        self._barrier.wait()  # all reads done before slots are reused
        return result

    def barrier(self, rank: int) -> None:
        self._barrier.wait()

    # p2p ---------------------------------------------------------------- #
    def _channel(self, src: int, dst: int) -> queue.Queue:
        with self._p2p_lock:
            key = (src, dst)
            if key not in self._p2p:
                self._p2p[key] = queue.Queue()
            return self._p2p[key]

    def send(self, src: int, dst: int, value) -> None:
        self._channel(src, dst).put(value)

    def recv(self, dst: int, src: int, timeout: float = 60.0):
        return self._channel(src, dst).get(timeout=timeout)

    def abort(self) -> None:
        self._barrier.abort()


class LocalCluster:
    """Executes ``fn(ctx)`` on every rank in parallel threads."""

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self._world = Communicator(tuple(range(world_size)))
        self._group_cache: dict[tuple[int, ...], Communicator] = {
            tuple(range(world_size)): self._world
        }
        self._cache_lock = threading.Lock()

    def communicator(self, ranks: tuple[int, ...]) -> Communicator:
        ranks = tuple(sorted(ranks))
        with self._cache_lock:
            if ranks not in self._group_cache:
                self._group_cache[ranks] = Communicator(ranks)
            return self._group_cache[ranks]

    def run(self, fn: Callable, timeout: float = 120.0) -> list:
        """Run ``fn(rank_context)`` on all ranks; returns per-rank results."""
        from .group import RankContext

        results: list = [None] * self.world_size
        errors: list = [None] * self.world_size

        def worker(rank: int) -> None:
            try:
                results[rank] = fn(RankContext(rank, self))
            except Exception as exc:  # noqa: BLE001 - propagate to caller
                errors[rank] = exc
                for comm in list(self._group_cache.values()):
                    comm.abort()

        threads = [
            threading.Thread(target=worker, args=(rank,), daemon=True)
            for rank in range(self.world_size)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=timeout)
            if thread.is_alive():
                for comm in list(self._group_cache.values()):
                    comm.abort()
                raise ClusterError("cluster run timed out (deadlock?)")
        failures = [(r, e) for r, e in enumerate(errors) if e is not None]
        if failures:
            # Prefer the root cause over secondary broken-barrier fallout.
            root = [(r, e) for r, e in failures
                    if not isinstance(e, threading.BrokenBarrierError)]
            rank, error = (root or failures)[0]
            raise ClusterError(f"rank {rank} failed: {error!r}",
                               original=error) from error
        return results
