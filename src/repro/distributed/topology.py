"""Hardware topology: the paper's testbed, described analytically.

The evaluation machines are Amazon EC2 p3dn.24xlarge instances: 8 NVIDIA
V100-SXM2-32GB GPUs per node connected by NVLink (300 GB/s aggregate per
GPU), and 100 Gbps (EFA) networking between nodes.  The constants below come
from public hardware specifications, not from fitting the paper's charts.

Beyond the paper's flat two-level machine, :class:`ClusterSpec` can carry an
explicit **link hierarchy** (:class:`LinkTier`): an ordered tuple of tiers,
innermost first, each with its own bandwidth, latency and NIC rail count.
Collective pricing resolves the tier from the *actual rank set* — a
hierarchical ring is bottlenecked by the slowest tier it crosses — so the
same mesh axes cost very different amounts depending on where the planner
places them (see ``docs/topology.md``).  When ``tiers`` is left ``None`` the
legacy two-tier (NVLink + node NIC) model is synthesized from the flat
bandwidth fields, byte-identically to the historical arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

#: bytes/second per Gbit/s of link speed — the Gbps→bytes/s conversion
#: that used to hide inside ``100e9 / 8``.
GBPS = 1e9 / 8


@dataclass(frozen=True)
class GPUSpec:
    """A single accelerator."""

    name: str = "V100-SXM2-32GB"
    #: peak tensor-core throughput for fp16 GEMMs (FLOP/s)
    peak_fp16_flops: float = 125e12
    #: peak fp32 throughput (FLOP/s)
    peak_fp32_flops: float = 15.7e12
    #: HBM2 bandwidth (bytes/s)
    memory_bandwidth: float = 900e9
    #: device memory (bytes)
    memory_capacity: float = 32e9
    #: memory the allocator/runtime reserves (fragmentation, cudnn, nccl)
    memory_reserved: float = 2.5e9
    #: fixed cost of launching one kernel (seconds)
    kernel_launch_overhead: float = 8e-6

    @property
    def usable_memory(self) -> float:
        return self.memory_capacity - self.memory_reserved

    def peak_flops(self, dtype_name: str) -> float:
        return self.peak_fp16_flops if dtype_name == "float16" \
            else self.peak_fp32_flops


@dataclass(frozen=True)
class LinkTier:
    """One level of the interconnect hierarchy.

    ``span`` is the number of *consecutive ranks* that form one island of
    this tier (8 for an 8-GPU NVLink node, ``8 * racks`` for a rack-local
    switch, 0 for "the whole cluster").  A rank set whose members all fall
    inside one island communicates at this tier; a set that crosses
    islands escalates to the next (slower) tier out.
    """

    name: str
    #: consecutive ranks per island; 0 = spans the entire cluster
    span: int
    #: per-link bandwidth (bytes/s) — for NIC tiers, per *rail*
    bandwidth: float
    #: per-hop collective latency (seconds)
    latency: float
    #: parallel NIC rails per island (rail-optimized fabrics have one NIC
    #: per GPU; the paper's p3dn nodes have a single shared EFA device)
    rails: int = 1


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of multi-GPU nodes."""

    num_nodes: int = 1
    gpus_per_node: int = 8
    gpu: GPUSpec = field(default_factory=GPUSpec)
    #: effective per-GPU NVLink bus bandwidth for ring collectives (bytes/s)
    intra_node_bandwidth: float = 130e9
    #: node-to-node network bandwidth (bytes/s); 100 Gbps EFA
    inter_node_bandwidth: float = 100 * GBPS
    #: per-hop collective latency (seconds)
    link_latency: float = 5e-6
    #: explicit link hierarchy, innermost tier first; ``None`` synthesizes
    #: the legacy two-tier model from the flat bandwidth fields above
    tiers: tuple[LinkTier, ...] | None = None
    #: fraction of the dp gradient all-reduce the runtime hides under
    #: backward when *not* using the bucketed ``overlap_grad_sync``
    #: stream-timeline mechanism (the former ``DP_OVERLAP`` constant)
    dp_sync_overlap: float = 0.7
    #: fraction of ZeRO-3 gather/scatter traffic hidden by prefetching
    #: (the former hard-coded ``ZERO_OVERLAP`` constant)
    zero_prefetch_overlap: float = 0.25

    @property
    def world_size(self) -> int:
        return self.num_nodes * self.gpus_per_node

    def node_of(self, rank: int) -> int:
        return rank // self.gpus_per_node

    def spans_nodes(self, ranks: tuple[int, ...]) -> bool:
        return len({self.node_of(r) for r in ranks}) > 1

    # ------------------------------------------------------------------ #
    # link hierarchy
    # ------------------------------------------------------------------ #
    @cached_property
    def link_tiers(self) -> tuple[LinkTier, ...]:
        """The resolved hierarchy (legacy two-tier model when implicit)."""
        if self.tiers is not None:
            return self.tiers
        return (
            LinkTier("intra_node", self.gpus_per_node,
                     self.intra_node_bandwidth, self.link_latency),
            LinkTier("inter_node", 0,
                     self.inter_node_bandwidth, self.link_latency),
        )

    def tier_for(self, ranks: tuple[int, ...]) -> LinkTier:
        """The slowest tier a rank set crosses (hierarchical ring).

        Walks the hierarchy innermost-out and returns the first tier whose
        islands contain the whole set; traffic inside one NVLink node never
        pays the network tier, while a set spanning nodes is governed by
        the network no matter how many of its hops are node-local.
        """
        for tier in self.link_tiers:
            if tier.span <= 0:
                return tier
            if len({r // tier.span for r in ranks}) <= 1:
                return tier
        return self.link_tiers[-1]

    def _ranks_per_node(self, ranks: tuple[int, ...]) -> int:
        nodes: dict[int, int] = {}
        for r in ranks:
            nodes[self.node_of(r)] = nodes.get(self.node_of(r), 0) + 1
        return max(nodes.values())

    # ------------------------------------------------------------------ #
    # α-β cost model for ring collectives
    # ------------------------------------------------------------------ #
    def _ring_link(self, ranks: tuple[int, ...]) -> tuple[float, float]:
        """(bandwidth, latency) governing a ring over ``ranks``.

        A ring crossing node boundaries is limited by the node NIC.  One
        world-spanning ring uses the full NIC; when a group places only a
        few ranks per node (e.g. data-parallel groups of tensor-sharded
        ranks), its sibling groups run the same collective concurrently and
        share the NIC, so each ring gets a proportional slice — unless the
        tier has enough rails to give each concurrent ring its own NIC.
        """
        tier = self.tier_for(ranks)
        if tier is self.link_tiers[0]:
            return tier.bandwidth, tier.latency
        ranks_per_node = self._ranks_per_node(ranks)
        concurrent_rings = max(self.gpus_per_node // ranks_per_node, 1)
        served = min(tier.rails, concurrent_rings)
        return tier.bandwidth * served / concurrent_rings, tier.latency

    def _ring_bandwidth(self, ranks: tuple[int, ...]) -> float:
        """Bottleneck bandwidth of a ring over ``ranks``."""
        return self._ring_link(ranks)[0]

    def _a2a_link(self, ranks: tuple[int, ...]) -> tuple[float, float]:
        """(bandwidth, latency) for an all-to-all over ``ranks``.

        On a multi-rail network tier the exchange is *rail-optimized*:
        every local rank drives its own NIC rail, so the per-rank
        bottleneck is a rail rather than a shared node uplink.  Single-rail
        tiers (the paper's EFA) fall back to the ring sharing model.
        """
        tier = self.tier_for(ranks)
        if tier is self.link_tiers[0] or tier.rails <= 1:
            return self._ring_link(ranks)
        ranks_per_node = self._ranks_per_node(ranks)
        active = min(tier.rails, ranks_per_node)
        return tier.bandwidth * active / ranks_per_node, tier.latency

    def all_reduce_time(self, nbytes: float, ranks: tuple[int, ...]) -> float:
        n = len(ranks)
        if n <= 1 or nbytes == 0:
            return 0.0
        bw, latency = self._ring_link(ranks)
        return 2 * (n - 1) / n * nbytes / bw + 2 * (n - 1) * latency

    def all_gather_time(self, nbytes: float, ranks: tuple[int, ...]) -> float:
        """``nbytes`` is the size of the *gathered* (full) tensor."""
        n = len(ranks)
        if n <= 1 or nbytes == 0:
            return 0.0
        bw, latency = self._ring_link(ranks)
        return (n - 1) / n * nbytes / bw + (n - 1) * latency

    reduce_scatter_time = all_gather_time

    def all_to_all_time(self, nbytes: float, ranks: tuple[int, ...]) -> float:
        """``nbytes`` is each rank's full (pre-split) buffer size.

        Every rank keeps its own ``1/n`` chunk and exchanges the other
        ``(n-1)/n`` pairwise — the same traffic volume per rank as an
        all-gather of the full buffer, so the α–β form matches it.
        """
        n = len(ranks)
        if n <= 1 or nbytes == 0:
            return 0.0
        bw, latency = self._a2a_link(ranks)
        return (n - 1) / n * nbytes / bw + (n - 1) * latency

    def broadcast_time(self, nbytes: float, ranks: tuple[int, ...]) -> float:
        n = len(ranks)
        if n <= 1 or nbytes == 0:
            return 0.0
        bw, latency = self._ring_link(ranks)
        return nbytes / bw + (n - 1) * latency

    def p2p_time(self, nbytes: float, src: int, dst: int) -> float:
        if nbytes == 0 or src == dst:
            return 0.0
        tier = self.tier_for((src, dst))
        return nbytes / tier.bandwidth + tier.latency

    def collective_coeffs(self, kind: str, ranks: tuple[int, ...]
                          ) -> tuple[float, float]:
        """(α, β) of the ring collective: ``time = α + β·nbytes``.

        Valid for ``nbytes > 0`` (empty collectives cost nothing).  This
        is the same α–β model the per-call methods above evaluate; having
        the coefficients lets a batch of ``k`` collectives totalling ``B``
        bytes be priced as ``k·α + β·B`` in one step.
        """
        n = len(ranks)
        if n <= 1:
            return 0.0, 0.0
        if kind == "all_to_all":
            bw, latency = self._a2a_link(ranks)
            return (n - 1) * latency, (n - 1) / n / bw
        bw, latency = self._ring_link(ranks)
        if kind == "all_reduce":
            return 2 * (n - 1) * latency, 2 * (n - 1) / n / bw
        if kind in ("all_gather", "reduce_scatter"):
            return (n - 1) * latency, (n - 1) / n / bw
        if kind == "broadcast":
            return (n - 1) * latency, 1.0 / bw
        raise ValueError(f"unknown collective kind: {kind}")

    def collective_time(self, kind: str, nbytes: float,
                        ranks: tuple[int, ...]) -> float:
        dispatch = {
            "all_reduce": self.all_reduce_time,
            "all_gather": self.all_gather_time,
            "reduce_scatter": self.reduce_scatter_time,
            "all_to_all": self.all_to_all_time,
            "broadcast": self.broadcast_time,
        }
        try:
            return dispatch[kind](nbytes, ranks)
        except KeyError:
            raise ValueError(f"unknown collective kind: {kind}") from None


#: the paper's single-node testbed
P3DN_NODE = ClusterSpec(num_nodes=1, gpus_per_node=8)


def p3dn_cluster(num_nodes: int) -> ClusterSpec:
    """A cluster of p3dn.24xlarge nodes (the paper's multi-node testbed)."""
    return ClusterSpec(num_nodes=num_nodes, gpus_per_node=8)


# ---------------------------------------------------------------------- #
# modern-scale presets (DGX-class nodes, rail-optimized IB fabrics)
# ---------------------------------------------------------------------- #

A100_GPU = GPUSpec(
    name="A100-SXM4-80GB",
    peak_fp16_flops=312e12,
    peak_fp32_flops=19.5e12,
    memory_bandwidth=2039e9,
    memory_capacity=80e9,
    memory_reserved=4e9,
    kernel_launch_overhead=5e-6,
)

H100_GPU = GPUSpec(
    name="H100-SXM5-80GB",
    peak_fp16_flops=989e12,
    peak_fp32_flops=67e12,
    memory_bandwidth=3350e9,
    memory_capacity=80e9,
    memory_reserved=4e9,
    kernel_launch_overhead=4e-6,
)


def a100_cluster(num_nodes: int = 1, gpus_per_node: int = 8) -> ClusterSpec:
    """DGX-A100-class cluster: NVLink3 nodes on an 8-rail 200 Gb HDR fabric."""
    return ClusterSpec(
        num_nodes=num_nodes, gpus_per_node=gpus_per_node, gpu=A100_GPU,
        intra_node_bandwidth=260e9,
        inter_node_bandwidth=gpus_per_node * 200 * GBPS,
        link_latency=5e-6,
        tiers=(
            LinkTier("nvlink", gpus_per_node, 260e9, 3e-6),
            LinkTier("ib_hdr", 0, 200 * GBPS, 5e-6, rails=gpus_per_node),
        ),
    )


def h100_cluster(num_nodes: int = 1, gpus_per_node: int = 8) -> ClusterSpec:
    """DGX-H100-class cluster: NVLink4 nodes on an 8-rail 400 Gb NDR fabric."""
    return ClusterSpec(
        num_nodes=num_nodes, gpus_per_node=gpus_per_node, gpu=H100_GPU,
        intra_node_bandwidth=450e9,
        inter_node_bandwidth=gpus_per_node * 400 * GBPS,
        link_latency=4e-6,
        tiers=(
            LinkTier("nvlink", gpus_per_node, 450e9, 2e-6),
            LinkTier("ib_ndr", 0, 400 * GBPS, 4e-6, rails=gpus_per_node),
        ),
    )


#: one DGX-A100-class node (NVLink only)
A100_NODE = a100_cluster(num_nodes=1)

#: one DGX-H100-class node (NVLink only)
H100_NODE = h100_cluster(num_nodes=1)
