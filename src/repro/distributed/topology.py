"""Hardware topology: the paper's testbed, described analytically.

The evaluation machines are Amazon EC2 p3dn.24xlarge instances: 8 NVIDIA
V100-SXM2-32GB GPUs per node connected by NVLink (300 GB/s aggregate per
GPU), and 100 Gbps (EFA) networking between nodes.  The constants below come
from public hardware specifications, not from fitting the paper's charts.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class GPUSpec:
    """A single accelerator."""

    name: str = "V100-SXM2-32GB"
    #: peak tensor-core throughput for fp16 GEMMs (FLOP/s)
    peak_fp16_flops: float = 125e12
    #: peak fp32 throughput (FLOP/s)
    peak_fp32_flops: float = 15.7e12
    #: HBM2 bandwidth (bytes/s)
    memory_bandwidth: float = 900e9
    #: device memory (bytes)
    memory_capacity: float = 32e9
    #: memory the allocator/runtime reserves (fragmentation, cudnn, nccl)
    memory_reserved: float = 2.5e9
    #: fixed cost of launching one kernel (seconds)
    kernel_launch_overhead: float = 8e-6

    @property
    def usable_memory(self) -> float:
        return self.memory_capacity - self.memory_reserved

    def peak_flops(self, dtype_name: str) -> float:
        return self.peak_fp16_flops if dtype_name == "float16" \
            else self.peak_fp32_flops


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of multi-GPU nodes."""

    num_nodes: int = 1
    gpus_per_node: int = 8
    gpu: GPUSpec = field(default_factory=GPUSpec)
    #: effective per-GPU NVLink bus bandwidth for ring collectives (bytes/s)
    intra_node_bandwidth: float = 130e9
    #: node-to-node network bandwidth (bytes/s); 100 Gbps EFA
    inter_node_bandwidth: float = 100e9 / 8
    #: per-hop collective latency (seconds)
    link_latency: float = 5e-6

    @property
    def world_size(self) -> int:
        return self.num_nodes * self.gpus_per_node

    def node_of(self, rank: int) -> int:
        return rank // self.gpus_per_node

    def spans_nodes(self, ranks: tuple[int, ...]) -> bool:
        return len({self.node_of(r) for r in ranks}) > 1

    # ------------------------------------------------------------------ #
    # α-β cost model for ring collectives
    # ------------------------------------------------------------------ #
    def _ring_bandwidth(self, ranks: tuple[int, ...]) -> float:
        """Bottleneck bandwidth of a ring over ``ranks``.

        A ring crossing node boundaries is limited by the node NIC.  One
        world-spanning ring uses the full NIC; when a group places only a
        few ranks per node (e.g. data-parallel groups of tensor-sharded
        ranks), its sibling groups run the same collective concurrently and
        share the NIC, so each ring gets a proportional slice.
        """
        if not self.spans_nodes(ranks):
            return self.intra_node_bandwidth
        nodes: dict[int, int] = {}
        for r in ranks:
            nodes[self.node_of(r)] = nodes.get(self.node_of(r), 0) + 1
        ranks_per_node = max(nodes.values())
        concurrent_rings = max(self.gpus_per_node // ranks_per_node, 1)
        return self.inter_node_bandwidth / concurrent_rings

    def all_reduce_time(self, nbytes: float, ranks: tuple[int, ...]) -> float:
        n = len(ranks)
        if n <= 1 or nbytes == 0:
            return 0.0
        bw = self._ring_bandwidth(ranks)
        return 2 * (n - 1) / n * nbytes / bw + 2 * (n - 1) * self.link_latency

    def all_gather_time(self, nbytes: float, ranks: tuple[int, ...]) -> float:
        """``nbytes`` is the size of the *gathered* (full) tensor."""
        n = len(ranks)
        if n <= 1 or nbytes == 0:
            return 0.0
        bw = self._ring_bandwidth(ranks)
        return (n - 1) / n * nbytes / bw + (n - 1) * self.link_latency

    reduce_scatter_time = all_gather_time

    def all_to_all_time(self, nbytes: float, ranks: tuple[int, ...]) -> float:
        """``nbytes`` is each rank's full (pre-split) buffer size.

        Every rank keeps its own ``1/n`` chunk and exchanges the other
        ``(n-1)/n`` pairwise — the same traffic volume per rank as an
        all-gather of the full buffer, so the α–β form matches it.
        """
        n = len(ranks)
        if n <= 1 or nbytes == 0:
            return 0.0
        bw = self._ring_bandwidth(ranks)
        return (n - 1) / n * nbytes / bw + (n - 1) * self.link_latency

    def broadcast_time(self, nbytes: float, ranks: tuple[int, ...]) -> float:
        n = len(ranks)
        if n <= 1 or nbytes == 0:
            return 0.0
        bw = self._ring_bandwidth(ranks)
        return nbytes / bw + (n - 1) * self.link_latency

    def p2p_time(self, nbytes: float, src: int, dst: int) -> float:
        if nbytes == 0 or src == dst:
            return 0.0
        bw = self.intra_node_bandwidth \
            if self.node_of(src) == self.node_of(dst) \
            else self.inter_node_bandwidth
        return nbytes / bw + self.link_latency

    def collective_coeffs(self, kind: str, ranks: tuple[int, ...]
                          ) -> tuple[float, float]:
        """(α, β) of the ring collective: ``time = α + β·nbytes``.

        Valid for ``nbytes > 0`` (empty collectives cost nothing).  This
        is the same α–β model the per-call methods above evaluate; having
        the coefficients lets a batch of ``k`` collectives totalling ``B``
        bytes be priced as ``k·α + β·B`` in one step.
        """
        n = len(ranks)
        if n <= 1:
            return 0.0, 0.0
        bw = self._ring_bandwidth(ranks)
        if kind == "all_reduce":
            return 2 * (n - 1) * self.link_latency, 2 * (n - 1) / n / bw
        if kind in ("all_gather", "reduce_scatter", "all_to_all"):
            return (n - 1) * self.link_latency, (n - 1) / n / bw
        if kind == "broadcast":
            return (n - 1) * self.link_latency, 1.0 / bw
        raise ValueError(f"unknown collective kind: {kind}")

    def collective_time(self, kind: str, nbytes: float,
                        ranks: tuple[int, ...]) -> float:
        dispatch = {
            "all_reduce": self.all_reduce_time,
            "all_gather": self.all_gather_time,
            "reduce_scatter": self.reduce_scatter_time,
            "all_to_all": self.all_to_all_time,
            "broadcast": self.broadcast_time,
        }
        try:
            return dispatch[kind](nbytes, ranks)
        except KeyError:
            raise ValueError(f"unknown collective kind: {kind}") from None


#: the paper's single-node testbed
P3DN_NODE = ClusterSpec(num_nodes=1, gpus_per_node=8)


def p3dn_cluster(num_nodes: int) -> ClusterSpec:
    """A cluster of p3dn.24xlarge nodes (the paper's multi-node testbed)."""
    return ClusterSpec(num_nodes=num_nodes, gpus_per_node=8)
