"""repro.schedules — per-model Slapo schedules (the paper's Table 4 artifacts)."""

from . import common
from .bert import schedule_bert, schedule_roberta
from .gpt import schedule_gpt
from .llama import schedule_llama
from .loc import PAPER_LOC, SCHEDULE_SOURCES, schedule_loc, table4
from .moe_gpt import schedule_moe_gpt
from .opt import schedule_opt
from .t5 import schedule_t5
from .wideresnet import schedule_wideresnet

#: family name → schedule function over the matching zoo model
SCHEDULES = {
    "BERT": schedule_bert,
    "RoBERTa": schedule_roberta,
    "GPT": schedule_gpt,
    "OPT": schedule_opt,
    "T5": schedule_t5,
    "WideResNet": schedule_wideresnet,
    "GPT-10B": schedule_gpt,
    "LLaMA-7B": schedule_llama,
    "OPT-350M": schedule_opt,
    "MoE-GPT": schedule_moe_gpt,
}

__all__ = [
    "schedule_bert", "schedule_roberta", "schedule_gpt", "schedule_opt",
    "schedule_t5", "schedule_wideresnet", "schedule_llama",
    "schedule_moe_gpt",
    "SCHEDULES", "SCHEDULE_SOURCES", "PAPER_LOC", "schedule_loc", "table4",
    "common",
]
