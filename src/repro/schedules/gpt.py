"""GPT-2 schedule (paper Table 4: 10 LoC).

GPT-2 already fuses QKV into ``c_attn``; the schedule interleaves its rows
per shard (Megatron's fused-QKV layout), shards attention + MLP + vocab,
swaps the attention core for flash attention, and fuses the MLP epilogues.
"""

from __future__ import annotations

from . import common


def schedule_gpt(sch, config, ckpt_ratio: float = 0.0,
                 use_flash: bool = True, use_fusion: bool = True,
                 use_tp: bool = True, prefix: str = "transformer"):
    tp = sch.mesh.tp_group.size if use_tp else 1
    layers = [f"{prefix}.h.{i}" for i in range(config.num_layers)]
    # <schedule>
    if tp > 1:
        common.shard_vocab(sch, f"{prefix}.wte", "lm_head")
    for path in layers:
        block = sch[path]
        if tp > 1:
            common.interleave_qkv_rows(block["attn.c_attn"].mod, tp)
            common.shard_pair(block, "attn.c_attn", "attn.c_proj")
            common.set_local_heads(block["attn"], config, tp)
            block["attn"].mod.hidden_size = config.hidden_size // tp
            common.shard_pair(block, "mlp.c_fc", "mlp.c_proj")
        if use_flash:
            common.replace_attention_core(block["attn"], is_causal=True)
        if use_fusion:
            block["mlp.c_fc"].decompose()
            block.trace(flatten=True)
            common.fuse_matches(block, common.bias_gelu, "BiasGeLU")
            common.fuse_matches(block, common.dropout_add, "DropoutAdd")
    common.checkpoint_layers(sch, layers, ckpt_ratio)
    # </schedule>
    return sch
