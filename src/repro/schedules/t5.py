"""T5 schedule (paper Table 4: 11 LoC): encoder + decoder + cross attention."""

from __future__ import annotations

from . import common


def _shard_attention(attn, config, tp: int) -> None:
    for proj in ("q", "k", "v"):
        attn[proj].shard("weight", axis=0)
    attn.sync(mode="bwd_post")
    attn["o"].shard("weight", axis=1)
    attn["o"].sync(mode="fwd_post")
    common.set_local_heads(attn, config, tp)


def schedule_t5(sch, config, ckpt_ratio: float = 0.0,
                use_flash: bool = True, use_tp: bool = True):
    tp = sch.mesh.tp_group.size if use_tp else 1
    enc = [f"encoder.block.{i}" for i in range(config.num_layers)]
    dec = [f"decoder.block.{i}" for i in range(config.num_decoder_layers)]
    # <schedule>
    if tp > 1:
        common.shard_vocab(sch, "shared", "lm_head")
    for path in enc:
        block = sch[path]
        if tp > 1:
            _shard_attention(block["layer.0.SelfAttention"], config, tp)
            common.shard_pair(block["layer.1.DenseReluDense"], "wi", "wo",
                              column_params=("weight",))
        if use_flash:
            common.replace_attention_core(block["layer.0.SelfAttention"])
    for path in dec:
        block = sch[path]
        if tp > 1:
            _shard_attention(block["layer.0.SelfAttention"], config, tp)
            _shard_attention(block["layer.1.EncDecAttention"], config, tp)
            common.shard_pair(block["layer.2.DenseReluDense"], "wi", "wo",
                              column_params=("weight",))
        if use_flash:
            common.replace_attention_core(block["layer.0.SelfAttention"],
                                          is_causal=True)
            block["layer.1.EncDecAttention"].trace(
                flatten=True, include_defaults=("key_value_states",))
            common.replace_attention_core(block["layer.1.EncDecAttention"])
    common.checkpoint_layers(sch, enc + dec, ckpt_ratio)
    # </schedule>
    return sch
