"""LLaMA schedule (paper Table 4: 11 LoC).

The paper highlights LLaMA as the "emerging model" Slapo supports without
Megatron-style reimplementation (§5.2): sharding SwiGLU needs gate and up
projections split column-wise and the down projection row-wise.
"""

from __future__ import annotations

from . import common


def schedule_llama(sch, config, ckpt_ratio: float = 0.0,
                   use_flash: bool = True, use_fusion: bool = True,
                   use_tp: bool = True, prefix: str = "model"):
    tp = sch.mesh.tp_group.size if use_tp else 1
    layers = [f"{prefix}.layers.{i}" for i in range(config.num_layers)]
    # <schedule>
    if tp > 1:
        common.shard_vocab(sch, f"{prefix}.embed_tokens", "lm_head")
    for path in layers:
        layer = sch[path]
        if tp > 1:
            for proj in ("q_proj", "k_proj", "v_proj"):
                layer[f"self_attn.{proj}"].shard("weight", axis=0)
            layer["self_attn"].sync(mode="bwd_post")
            layer["self_attn.o_proj"].shard("weight", axis=1)
            layer["self_attn.o_proj"].sync(mode="fwd_post")
            common.set_local_heads(layer["self_attn"], config, tp)
            layer["mlp.gate_proj"].shard("weight", axis=0)
            layer["mlp.up_proj"].shard("weight", axis=0)
            layer["mlp"].sync(mode="bwd_post")
            layer["mlp.down_proj"].shard("weight", axis=1)
            layer["mlp.down_proj"].sync(mode="fwd_post")
        if use_flash:
            common.replace_attention_core(layer["self_attn"], is_causal=True)
        if use_fusion:
            layer["mlp"].trace(flatten=True)
            common.fuse_matches(layer["mlp"], common.swiglu, "SwiGLU")
    common.checkpoint_layers(sch, layers, ckpt_ratio)
    # </schedule>
    return sch
