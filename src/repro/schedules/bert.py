"""BERT schedule (paper appendix A / Table 4: 21 LoC).

Vocab-parallel embedding, Megatron-style TP on attention + FFN, flash
attention via subgraph replacement, Bias-GeLU and dropout-residual-LN
fusion via the stand-in compilers, and selective activation checkpointing.
"""

from __future__ import annotations

from . import common


def schedule_bert(sch, config, ckpt_ratio: float = 0.0,
                  use_flash: bool = True, use_fusion: bool = True,
                  use_tp: bool = True, shard_embedding: bool = True,
                  prefix: str = "bert"):
    """Apply the BERT training schedule (also used verbatim for RoBERTa)."""
    tp = sch.mesh.tp_group.size if use_tp else 1
    layers = [f"{prefix}.encoder.layer.{i}" for i in range(config.num_layers)]
    # <schedule>
    if shard_embedding and tp > 1:
        head = "cls.decoder" if prefix == "bert" else "lm_head.decoder"
        common.shard_vocab(sch, f"{prefix}.embeddings.word_embeddings", head,
                           head_params=("weight", "bias"))
    for path in layers:
        layer = sch[path]
        if tp > 1:
            attn = layer["attention"]
            for proj in ("self.query", "self.key", "self.value"):
                attn[proj].shard(["weight", "bias"], axis=0)
            attn["self"].sync(mode="bwd_post")
            common.set_local_heads(attn["self"], config, tp,
                                   attr="num_attention_heads")
            attn["output.dense"].shard("weight", axis=1)
            attn["output.dense"].sync(mode="fwd_post")
            common.shard_pair(layer, "intermediate.dense", "output.dense")
        if use_flash:
            common.replace_attention_core(layer["attention.self"])
        if use_fusion:
            layer["intermediate.dense"].decompose()
            layer.trace(flatten=True)
            # Under tensor parallelism the sharded linear carries a
            # backward-sync hook and stays opaque to the trace, so the
            # Bias-GeLU pattern (correctly) finds no match — fuse what
            # matched rather than assuming both patterns always appear.
            common.fuse_matches(layer, common.bias_gelu, "BiasGeLU")
            common.fuse_matches(layer, common.dropout_residual_ln,
                                "LNResidual")
    common.checkpoint_layers(sch, layers, ckpt_ratio)
    # </schedule>
    return sch


def schedule_roberta(sch, config, **kwargs):
    """RoBERTa shares BERT's architecture — and therefore its schedule
    (paper §5.3: "certain schedules can be shared among models")."""
    return schedule_bert(sch, config, prefix="roberta", **kwargs)
