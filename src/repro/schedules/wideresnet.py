"""WideResNet schedule (paper Table 4: 12 LoC).

Channel-parallel bottlenecks: the expensive 3×3 conv is sharded on output
channels (its BatchNorm statistics shard with it — channels are
independent), the following 1×1 conv is sharded on input channels and
all-reduced.
"""

from __future__ import annotations

from . import common


def schedule_wideresnet(sch, config, ckpt_ratio: float = 0.0,
                        use_tp: bool = True):
    tp = sch.mesh.tp_group.size if use_tp else 1
    blocks = [
        f"layer{stage + 1}.{i}"
        for stage, count in enumerate(config.layers)
        for i in range(count)
    ]
    # <schedule>
    for path in blocks:
        block = sch[path]
        if use_tp and tp > 1:
            block["conv2"].shard("weight", axis=0)
            block["conv2"].sync(mode="bwd_post")
            block["bn2"].shard(
                ["weight", "bias", "running_mean", "running_var"], axis=0)
            block["conv3"].shard("weight", axis=1)
            block["conv3"].sync(mode="fwd_post")
    common.checkpoint_layers(sch, blocks, ckpt_ratio)
    # </schedule>
    return sch
