"""Shared schedule utilities (the template library of paper §5.3).

"Certain schedules can be shared among models with similar architectures" —
these helpers are that shared layer: attention-core replacement, fused-QKV
row interleaving for tensor parallelism, and checkpoint-ratio selection.
"""

from __future__ import annotations

import numpy as np

from repro.framework import functional as F
from repro.kernels import FlashAttention
from repro.slapo.pattern import call_module


def attention_core(q, k, v, scale):
    """Vanilla attention with a dropout module on the probabilities."""
    attn = q @ k.transpose(-2, -1)
    attn = attn / scale
    attn = call_module(r".*dropout.*", F.softmax(attn, dim=-1))
    return attn @ v


def attention_core_nodrop(q, k, v, scale):
    attn = q @ k.transpose(-2, -1)
    attn = attn / scale
    return F.softmax(attn, dim=-1) @ v


def causal_attention_core(q, k, v, scale):
    attn = q @ k.transpose(-2, -1)
    attn = attn / scale
    attn = F.apply_causal_mask(attn)
    attn = call_module(r".*dropout.*", F.softmax(attn, dim=-1))
    return attn @ v


def causal_attention_core_nodrop(q, k, v, scale):
    attn = q @ k.transpose(-2, -1)
    attn = attn / scale
    attn = F.apply_causal_mask(attn)
    return F.softmax(attn, dim=-1) @ v


def t5_attention_core(q, k, v):
    """T5 attention: unscaled, optional causal mask handled separately."""
    return F.softmax(q @ k.transpose(-2, -1), dim=-1) @ v


def bias_gelu(x, bias):
    return F.gelu(x + bias)


def bias_relu(x, bias):
    return F.relu(x + bias)


def swiglu(x):
    """LLaMA's gated MLP entry: silu(gate(x)) * up(x) reads x once."""
    return F.silu(call_module(r".*gate_proj.*", x)) \
        * call_module(r".*up_proj.*", x)


def dropout_residual_ln(x, residual):
    """dropout → residual add → LayerNorm epilogue (post-LN models)."""
    return call_module(r".*LayerNorm.*",
                       call_module(r".*dropout.*", x) + residual)


def dropout_add(x, residual):
    """dropout → residual add (pre-LN models like GPT/OPT)."""
    return call_module(r".*dropout.*", x) + residual


def fuse_matches(sch, pattern, name: str,
                 compiler: str = "TorchInductor") -> int:
    """Fuse every occurrence of ``pattern``; returns the match count."""
    matches = sch.find(pattern)
    if matches:
        sch.fuse(matches, compiler=compiler, name=name)
    return len(matches)


ATTENTION_PATTERNS = (
    attention_core,
    causal_attention_core,
    attention_core_nodrop,
    causal_attention_core_nodrop,
)


def replace_attention_core(attn_sch, is_causal: bool = False,
                           name: str = "FA") -> bool:
    """Trace an attention module and swap its core for flash attention.

    Returns True when a core was found and replaced.  Works on vanilla and
    causal variants, with or without attention-probability dropout.
    """
    attn_sch.trace(flatten=True)
    for pattern in ATTENTION_PATTERNS:
        matches = attn_sch.find(pattern)
        if matches:
            attn_sch.replace(FlashAttention(is_causal=is_causal), matches,
                             name=name)
            return True
    matches = attn_sch.find(t5_attention_core)
    if matches:
        attn_sch.replace(FlashAttention(is_causal=is_causal, scale=1.0),
                         matches, name=name)
        return True
    return False


def interleave_qkv_rows(linear, num_shards: int) -> None:
    """Permute a fused-QKV linear's rows so contiguous row sharding keeps
    [q; k; v] grouped per shard (Megatron's fused-QKV storage layout)."""
    if num_shards == 1 or linear.weight.is_meta:
        return
    out = linear.out_features
    h = out // 3
    block = h // num_shards
    order = np.concatenate([
        np.concatenate([
            np.arange(part * h + r * block, part * h + (r + 1) * block)
            for part in range(3)
        ])
        for r in range(num_shards)
    ])
    linear.weight.data[...] = linear.weight.data[order]
    # Record the permutation so the verifier can map a shard's gradient
    # rows back to the vanilla model's row order.
    linear.weight._slapo_row_perm = order
    if linear._parameters.get("bias") is not None:
        linear.bias.data[...] = linear.bias.data[order]
        linear.bias._slapo_row_perm = order


def shard_pair(block, column: str, row: str,
               column_params=("weight", "bias"),
               row_params=("weight",)) -> None:
    """Megatron's column→row parallel pair with both syncs.

    ``column`` projects into the parallel region (output-sharded, gradient
    all-reduce on backward); ``row`` projects out of it (input-sharded,
    activation all-reduce on forward).
    """
    block[column].shard(list(column_params), axis=0)
    block[column].sync(mode="bwd_post")
    block[row].shard(list(row_params), axis=1)
    block[row].sync(mode="fwd_post")


def shard_vocab(sch, embed_path: str, head_path: str,
                head_params=("weight",)) -> None:
    """Vocab-parallel embedding + output head (paper Fig. 9, step 4)."""
    import repro.slapo as slapo

    sch[embed_path].shard("weight", axis=0)
    sch[embed_path].sync(mode="fwd_pre", sync_op_or_fn=slapo.op.embed_fwd_hook)
    sch[embed_path].sync(mode="fwd_post", sync_op_or_fn=slapo.op.embed_bwd_hook)
    sch[head_path].shard(list(head_params), axis=0)
    sch[head_path].sync(mode="fwd_post", sync_op_or_fn="all_gather")
    # The head is a column-parallel linear: each rank's backward yields only
    # its vocab shard's contribution to the input gradient, so the hidden
    # states entering the head need the Megatron-style all-reduce or every
    # upstream parameter trains on a 1/tp-scaled gradient.
    sch[head_path].sync(mode="bwd_post")


def set_local_heads(attn_sch, config, tp: int,
                    attr: str = "num_heads") -> None:
    """After sharding q/k/v, the module computes with its local heads."""
    setattr(attn_sch.mod, attr, getattr(config, "num_heads") // tp)


def checkpoint_layers(sch, layer_paths: list[str], ratio: float) -> int:
    """Checkpoint the first ``ratio`` fraction of the given layers.

    Every path is also marked as a checkpoint *unit* — the layer-region
    marker the simulator records as an op span — so the planner can
    re-price any other ratio analytically from a single ratio-0 trace
    (:func:`repro.sim.compiled.reprice_checkpoint_ratio`).
    """
    count = int(round(ratio * len(layer_paths)))
    for i, path in enumerate(layer_paths):
        layer = sch[path]
        layer.mod._slapo_meta["ckpt_unit"] = True
        if i < count:
            layer.checkpoint()
    return count
