"""Schedule lines-of-code accounting (paper Table 4).

Counts non-blank, non-comment source lines between the ``# <schedule>`` /
``# </schedule>`` markers of each model's schedule function — the code a
performance engineer actually writes.
"""

from __future__ import annotations

import inspect

from . import bert, gpt, llama, opt, t5, wideresnet

SCHEDULE_SOURCES = {
    "BERT": bert.schedule_bert,
    "RoBERTa": bert.schedule_bert,  # shared with BERT (paper §5.3)
    "GPT": gpt.schedule_gpt,
    "OPT": opt.schedule_opt,
    "T5": t5.schedule_t5,
    "WideResNet": wideresnet.schedule_wideresnet,
    "LLaMA": llama.schedule_llama,
}

#: the paper's Table 4
PAPER_LOC = {
    "BERT": 21, "RoBERTa": 21, "GPT": 10, "OPT": 10, "T5": 11,
    "WideResNet": 12, "LLaMA": 11,
}


def schedule_loc(fn) -> int:
    """Schedule-body LoC of a schedule function."""
    lines = inspect.getsource(fn).splitlines()
    inside = False
    count = 0
    for line in lines:
        stripped = line.strip()
        if stripped == "# </schedule>":
            inside = False
        if inside and stripped and not stripped.startswith("#"):
            count += 1
        if stripped == "# <schedule>":
            inside = True
    return count


def table4() -> dict[str, dict[str, int]]:
    """Measured vs paper LoC for every model family."""
    out = {}
    for family, fn in SCHEDULE_SOURCES.items():
        out[family] = {
            "measured": schedule_loc(fn),
            "paper": PAPER_LOC[family],
        }
    return out
