"""OPT schedule (paper Table 4: 10 LoC)."""

from __future__ import annotations

from . import common


def schedule_opt(sch, config, ckpt_ratio: float = 0.0,
                 use_flash: bool = True, use_fusion: bool = True,
                 use_tp: bool = True, prefix: str = "model.decoder"):
    tp = sch.mesh.tp_group.size if use_tp else 1
    layers = [f"{prefix}.layers.{i}" for i in range(config.num_layers)]
    # <schedule>
    if tp > 1:
        common.shard_vocab(sch, f"{prefix}.embed_tokens", "lm_head")
    for path in layers:
        layer = sch[path]
        if tp > 1:
            for proj in ("q_proj", "k_proj", "v_proj"):
                layer[f"self_attn.{proj}"].shard(["weight", "bias"], axis=0)
            layer["self_attn"].sync(mode="bwd_post")
            layer["self_attn.out_proj"].shard("weight", axis=1)
            layer["self_attn.out_proj"].sync(mode="fwd_post")
            common.set_local_heads(layer["self_attn"], config, tp)
            common.shard_pair(layer, "fc1", "fc2")
        if use_flash:
            common.replace_attention_core(layer["self_attn"], is_causal=True)
        if use_fusion:
            layer["fc1"].decompose()
            layer.trace(flatten=True)
            common.fuse_matches(layer, common.bias_relu, "BiasReLU")
            common.fuse_matches(layer, common.dropout_add, "DropoutAdd")
    common.checkpoint_layers(sch, layers, ckpt_ratio)
    # </schedule>
    return sch
