"""MoE-GPT schedule: dense-GPT sharding plus the expert-parallel axis.

The attention/vocab parts are the GPT-2 recipe verbatim (the trunk is the
same model); each block's feed-forward is a mixture-of-experts layer that
``shard_experts`` partitions across the mesh's ``ep`` axis, with the
experts' own FFN pairs optionally tensor-parallelised column→row inside
each expert.
"""

from __future__ import annotations

from . import common


def schedule_moe_gpt(sch, config, ckpt_ratio: float = 0.0,
                     use_flash: bool = True, use_tp: bool = True,
                     use_ep: bool = True, prefix: str = "transformer"):
    tp = sch.mesh.tp_group.size if use_tp else 1
    ep = sch.mesh.ep_group.size if use_ep else 1
    layers = [f"{prefix}.h.{i}" for i in range(config.num_layers)]
    # <schedule>
    if tp > 1:
        common.shard_vocab(sch, f"{prefix}.wte", "lm_head")
    for path in layers:
        block = sch[path]
        if tp > 1:
            common.interleave_qkv_rows(block["attn.c_attn"].mod, tp)
            common.shard_pair(block, "attn.c_attn", "attn.c_proj")
            common.set_local_heads(block["attn"], config, tp)
            block["attn"].mod.hidden_size = config.hidden_size // tp
            for index in range(len(block["moe"].mod.experts)):
                common.shard_pair(block["moe"], f"experts.{index}.fc1",
                                  f"experts.{index}.fc2")
        if use_flash:
            common.replace_attention_core(block["attn"], is_causal=True)
        if ep > 1:
            block["moe"].shard_experts()
    common.checkpoint_layers(sch, layers, ckpt_ratio)
    # </schedule>
    return sch
