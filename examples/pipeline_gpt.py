"""Pipeline-parallel GPT: .pipeline_split() + the 1F1B micro-batch runtime.

Demonstrates paper §3.3.2: annotate stage boundaries on the *hierarchical*
model, let build() propagate the annotations and partition with liveness
analysis, then train with micro-batched 1F1B — gradients must equal
full-batch training.

Run:  python examples/pipeline_gpt.py
"""

import numpy as np

import repro.slapo as slapo
from repro import framework as fw
from repro.baselines import PipelineRuntime
from repro.distributed import DeviceMesh, ParallelConfig
from repro.framework import functional as F
from repro.models import GPT_2_9B, GPT2LMHeadModel


def main():
    config = GPT_2_9B.tiny(num_layers=4, hidden_size=16, num_heads=2,
                           vocab_size=64)
    fw.manual_seed(0)
    model = GPT2LMHeadModel(config)
    model.eval()

    mesh = DeviceMesh(ParallelConfig(pp=2), rank=0, sim=True)
    sch = slapo.create_schedule(model, mesh=mesh)
    sch["transformer.h.1"].pipeline_split()
    built = slapo.build(sch, target="deepspeed")
    print(f"partitioned into {built.model.num_stages} stages "
          f"(DeepSpeed tuple-I/O dialect)")
    for i, stage in enumerate(built.stages):
        mods = [n.target for n in stage.graph if n.op == "call_module"]
        print(f"  stage {i}: {len(mods)} modules "
              f"({mods[0]} .. {mods[-1]})")

    ids = fw.randint(0, config.vocab_size, (4, 6))
    labels = fw.randint(0, config.vocab_size, (4 * 6,))

    # Full-batch reference gradients.
    logits = built(ids)
    loss = F.cross_entropy(logits.view(-1, config.vocab_size), labels)
    loss.backward()
    reference = {name: p.grad.numpy().copy()
                 for name, p in model.named_parameters()
                 if p.grad is not None}
    model.zero_grad()

    # 1F1B over 2 micro-batches must produce identical gradients.
    runtime = PipelineRuntime(built.stages, num_micro_batches=2,
                              schedule="1f1b")
    micro_inputs = [(ids[0:2],), (ids[2:4],)]
    micro_labels = [labels[0:12], labels[12:24]]

    def loss_fn(output, micro):
        return F.cross_entropy(
            output.view(-1, config.vocab_size), micro_labels[micro])

    mean_loss = runtime.train_step(micro_inputs, loss_fn)
    print(f"1F1B mean micro-batch loss: {mean_loss:.4f} "
          f"(full-batch: {loss.item():.4f})")
    print(f"pipeline bubble fraction: {runtime.bubble_fraction():.2f}")

    worst = 0.0
    for name, p in model.named_parameters():
        if name in reference and p.grad is not None:
            worst = max(worst, float(np.max(np.abs(
                p.grad.numpy() - reference[name]))))
    print(f"max gradient deviation vs full batch: {worst:.2e}")
    assert worst < 1e-4
    print("micro-batched pipeline training matches full-batch gradients ✓")


if __name__ == "__main__":
    main()
