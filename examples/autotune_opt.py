"""Auto-tune an OPT-350M training configuration (paper §3.4 / Fig. 10).

Builds the paper's conditional search space over (batch size, activation-
checkpoint ratio), prices every configuration with the V100 performance
simulator, and compares all four search strategies:

* exhaustive — measure the whole space (the baseline);
* coordinate descent — the paper's randomized search;
* simulator-guided — the analytical cost model ranks the space and
  prunes the OOM region for free; only the top-k are measured;
* evolutionary — mutation/crossover with the cost model as a fitness
  prefilter.

A persistent trial cache is demonstrated last: re-tuning with cached
measurements costs zero search time.

Run:  python examples/autotune_opt.py
"""

import tempfile
from pathlib import Path

import repro.slapo as slapo
from repro.distributed import DeviceMesh, P3DN_NODE, ParallelConfig
from repro.models import MODEL_ZOO, data
from repro.sim import model_memory, throughput, trace_model
from repro.sim.kernel_cost import KernelCostModel
from repro.slapo.tuner import AutoTuner, SimCostModel, TrialCache
from repro.schedules import SCHEDULES

PARALLEL = ParallelConfig(dp=8)
_TRACES = {}


def update_space(space):
    """The paper's Fig. 6 space: candidates depend on earlier choices."""
    bs = space.create_symbol("batch_size", range(104, 177, 8))
    ckpt_ratio_cand = [0.67, 0.5, 0.34, 0.25]
    if bs >= 120:
        ckpt_ratio_cand += [1.0, 0.92, 0.84]
    space.create_symbol("ckpt_ratio", ckpt_ratio_cand)
    return space


def traced(ratio):
    if ratio not in _TRACES:
        cls, config = MODEL_ZOO["OPT-350M"]
        model = cls(config, device="meta")
        sch = slapo.create_schedule(
            model, mesh=DeviceMesh(PARALLEL, rank=0, sim=True))
        SCHEDULES["OPT-350M"](sch, config, ckpt_ratio=ratio, use_tp=False,
                              use_flash=False)
        ids, _ = data.lm_batch(config, 1, device="meta")
        _TRACES[ratio] = (model, trace_model(model, ids))
    return _TRACES[ratio]


def evaluate(config):
    """The "measurement": a full-fidelity simulated trial (0 = OOM)."""
    micro = config["batch_size"] // PARALLEL.dp
    model, trace = traced(config["ckpt_ratio"])
    memory = model_memory(model, trace, micro, dp_size=PARALLEL.dp)
    if memory.total > P3DN_NODE.gpu.usable_memory:
        return 0.0  # OOM
    return throughput(trace, model, P3DN_NODE, PARALLEL, micro)


def make_cost_model():
    """The simulator as a cheap config→prediction oracle for the tuner."""
    return SimCostModel(
        trace_fn=lambda config: traced(config["ckpt_ratio"]),
        trace_key_fn=lambda config: config["ckpt_ratio"],
        cluster=P3DN_NODE,
        parallel=PARALLEL,
        kernel_cost=KernelCostModel(P3DN_NODE.gpu, gemm_eff_fp16=0.52),
    )


def show(label, result, baseline=None):
    report = result.report
    line = (f"{label:<17} best {result.best_throughput:8.1f} samples/s "
            f"at {result.best_config} "
            f"({result.num_trials} trials, {report.num_pruned} pruned, "
            f"{result.search_seconds / 60:.0f} simulated min")
    if baseline is not None and baseline.search_seconds > 0:
        saving = 1 - result.search_seconds / baseline.search_seconds
        line += f", {saving:.0%} time saved"
    print(line + ")")


def main():
    exhaustive = AutoTuner(update_space, evaluate).exhaustive()
    print(f"search space: {exhaustive.report.space_size} configurations")
    show("exhaustive", exhaustive)

    cd = AutoTuner(update_space, evaluate, seed=0).coordinate_descent()
    show("coord desc", cd, exhaustive)

    sg = AutoTuner(update_space, evaluate, seed=0,
                   cost_model=make_cost_model()).simulator_guided()
    show("simulator-guided", sg, exhaustive)
    print(f"{'':17} cost model pruned the OOM region for free and "
          f"mispredicted throughput by only "
          f"{sg.report.mean_prediction_error:.1%} on average")

    ev = AutoTuner(update_space, evaluate, seed=0,
                   cost_model=make_cost_model()).evolutionary(
                       population=8, generations=4)
    show("evolutionary", ev, exhaustive)

    # Persistent trial cache: a second tuning session reuses measurements.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "opt350m_trials.json"
        AutoTuner(update_space, evaluate, seed=0,
                  cost_model=make_cost_model(),
                  cache=TrialCache(path)).simulator_guided()
        rerun = AutoTuner(update_space, evaluate, seed=0,
                          cost_model=make_cost_model(),
                          cache=TrialCache(path)).simulator_guided()
        print(f"cached re-run    best {rerun.best_throughput:8.1f} samples/s "
              f"({rerun.report.num_cache_hits}/{rerun.num_trials} trials "
              f"from cache, {rerun.search_seconds:.0f} simulated seconds)")

    print(f"(paper Fig. 10: 17/91 configs explored, 20 vs 139 minutes, "
          f"86% search time saved)")


if __name__ == "__main__":
    main()
