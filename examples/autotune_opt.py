"""Auto-tune an OPT-350M training configuration (paper §3.4 / Fig. 10).

Builds the paper's conditional search space over (batch size, activation-
checkpoint ratio), prices every configuration with the V100 performance
simulator, and compares exhaustive search against randomized coordinate
descent.

Run:  python examples/autotune_opt.py
"""

import repro.slapo as slapo
from repro.distributed import DeviceMesh, P3DN_NODE, ParallelConfig
from repro.models import MODEL_ZOO, data
from repro.sim import model_memory, throughput, trace_model
from repro.slapo.tuner import AutoTuner
from repro.schedules import SCHEDULES

PARALLEL = ParallelConfig(dp=8)
_TRACES = {}


def update_space(space):
    """The paper's Fig. 6 space: candidates depend on earlier choices."""
    bs = space.create_symbol("batch_size", range(104, 177, 8))
    ckpt_ratio_cand = [0.67, 0.5, 0.34, 0.25]
    if bs >= 120:
        ckpt_ratio_cand += [1.0, 0.92, 0.84]
    space.create_symbol("ckpt_ratio", ckpt_ratio_cand)
    return space


def traced(ratio):
    if ratio not in _TRACES:
        cls, config = MODEL_ZOO["OPT-350M"]
        model = cls(config, device="meta")
        sch = slapo.create_schedule(
            model, mesh=DeviceMesh(PARALLEL, rank=0, sim=True))
        SCHEDULES["OPT-350M"](sch, config, ckpt_ratio=ratio, use_tp=False,
                              use_flash=False)
        ids, _ = data.lm_batch(config, 1, device="meta")
        _TRACES[ratio] = (model, trace_model(model, ids))
    return _TRACES[ratio]


def evaluate(config):
    micro = config["batch_size"] // PARALLEL.dp
    model, trace = traced(config["ckpt_ratio"])
    memory = model_memory(model, trace, micro, dp_size=PARALLEL.dp)
    if memory.total > P3DN_NODE.gpu.usable_memory:
        return 0.0  # OOM
    return throughput(trace, model, P3DN_NODE, PARALLEL, micro)


def main():
    exhaustive = AutoTuner(update_space, evaluate).exhaustive()
    tuner = AutoTuner(update_space, evaluate, seed=0)
    cd = tuner.coordinate_descent()

    print(f"search space: {len(tuner.configs)} configurations")
    print(f"exhaustive : best {exhaustive.best_throughput:8.1f} samples/s "
          f"at {exhaustive.best_config} "
          f"({exhaustive.num_trials} trials, "
          f"{exhaustive.search_seconds / 60:.0f} simulated min)")
    print(f"coord desc : best {cd.best_throughput:8.1f} samples/s "
          f"at {cd.best_config} "
          f"({cd.num_trials} trials, "
          f"{cd.search_seconds / 60:.0f} simulated min)")
    saving = 1 - cd.search_seconds / exhaustive.search_seconds
    print(f"coordinate descent explored "
          f"{100 * cd.num_trials / len(tuner.configs):.0f}% of the space "
          f"and saved {saving:.0%} of the search time "
          f"(paper: 19% explored, 86% saved)")


if __name__ == "__main__":
    main()
