"""Tensor-parallel BERT on a simulated 4-rank cluster, verified end to end.

The Megatron-style sharding of paper Fig. 3(c) expressed as schedule
primitives over the *unmodified* HuggingFace-like model, executed on a
LocalCluster (one thread per rank with real collectives), and checked
against the single-device model — the paper's §3.5 verifier in action.

Run:  python examples/distributed_bert.py
"""

import numpy as np

import repro.slapo as slapo
from repro import framework as fw
from repro.distributed import DeviceMesh, LocalCluster, ParallelConfig
from repro.models import BERT_1B, BertLMHeadModel
from repro.schedules import schedule_bert

TP = 4


def main():
    config = BERT_1B.tiny(num_layers=2, hidden_size=16, num_heads=4,
                          vocab_size=64)
    fw.manual_seed(7)
    ids = fw.randint(0, config.vocab_size, (2, 8))

    fw.manual_seed(0)
    reference = BertLMHeadModel(config)
    reference.eval()
    expected = reference(ids).numpy()
    print(f"single-device logits: shape={tuple(expected.shape)}")

    cluster = LocalCluster(TP)

    def run_rank(ctx):
        fw.manual_seed(0)  # every rank builds identical weights...
        model = BertLMHeadModel(config)
        model.eval()
        mesh = DeviceMesh(ParallelConfig(tp=TP), ctx=ctx)
        sch = slapo.create_schedule(model, mesh=mesh)
        schedule_bert(sch, config)  # ...and shards its own slice
        local_params = model.num_parameters()
        out = model(ids)
        return local_params, out.numpy()

    results = cluster.run(run_rank)
    full = reference.num_parameters()
    for rank, (local, out) in enumerate(results):
        err = float(np.max(np.abs(out - expected)))
        print(f"rank {rank}: local params {local:,} "
              f"({100 * local / full:.0f}% of {full:,}), "
              f"max abs err {err:.2e}")
        assert err < 5e-3
    print("tensor-parallel outputs match the single-device model ✓")

    # The same schedule under slapo.verify (differential testing).
    slapo.verify(
        model_factory=lambda: BertLMHeadModel(config),
        schedule_fn=lambda sch: schedule_bert(sch, config),
        inputs_factory=lambda: (ids,),
        world_size=TP,
    )
    print("slapo.verify passed ✓")


if __name__ == "__main__":
    main()
