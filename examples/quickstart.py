"""Quickstart: schedule a BERT model progressively, exactly like paper Fig. 3.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro.slapo as slapo
from repro import framework as fw
from repro.framework import functional as F
from repro.kernels import FlashAttention
from repro.models import BERT_1B, BertLMHeadModel
from repro.schedules.common import attention_core


def main():
    # A tiny BERT so the example runs in seconds; the schedule below works
    # unchanged on the full 0.96B-parameter configuration.
    config = BERT_1B.tiny(num_layers=2, hidden_size=16, num_heads=2)
    fw.manual_seed(0)
    model = BertLMHeadModel(config)
    model.eval()
    ids = fw.randint(0, config.vocab_size, (2, 8))
    reference = model(ids).numpy()

    # 1. The default schedule executes the model exactly as defined.
    sch = slapo.create_schedule(model)
    print("schedule:", sch)
    print("attention module:", sch["bert.encoder.layer.0.attention"])

    # 2. Module primitive: checkpoint a layer (memory ↘, compute ↗).
    sch["bert.encoder.layer.0"].checkpoint()

    # 3. Static-graph primitives: trace the attention core, find the
    #    softmax(QK^T/√d)V pattern, and swap in flash attention.
    for idx in range(config.num_layers):
        attn = sch[f"bert.encoder.layer.{idx}.attention.self"]
        attn.trace(flatten=True)
        matches = attn.find(attention_core)
        print(f"layer {idx}: matched {len(matches)} attention core(s)")
        attn.replace(FlashAttention(), matches, name="FA")

    # 4. Fusion via a stand-in compiler: bias-add + GELU in one kernel.
    for idx in range(config.num_layers):
        layer = sch[f"bert.encoder.layer.{idx}"]
        layer["intermediate.dense"].decompose()
        layer.trace(flatten=True)
        from repro.schedules.common import bias_gelu

        layer.fuse(layer.find(bias_gelu), compiler="TorchInductor",
                   name="BiasGeLU")

    # 5. Build and check the scheduled model is numerically unchanged.
    built = slapo.build(sch)
    out = built(ids).numpy()
    err = float(np.max(np.abs(out - reference)))
    print(f"max abs error vs vanilla model: {err:.2e}")
    assert err < 1e-3
    print("scheduled model matches the vanilla model ✓")

    print("\napplied primitives:")
    for record in sch.context.history:
        print(f"  .{record.name}() on {record.path or '<root>'}")


if __name__ == "__main__":
    main()
