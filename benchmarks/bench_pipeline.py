"""Pipeline-parallelism benchmark panel — stage-accurate planning payoff.

Two questions, answered with numbers written to ``BENCH_pipeline.json``:

* **Does stage accuracy matter?**  For a deliberately imbalanced 2-stage
  GPT split, compare the stage-resolved ``step_time`` (bottleneck stage,
  true cut-tensor bytes) against the old uniform ``compute/pp`` estimate
  — the two must disagree, or the whole dimension is vacuous.
* **Does planning pay?**  ``plan_pipeline_cuts`` must find a split whose
  simulated throughput beats the naive even-layer split (the LM head
  makes the last stage heavier, so the balanced cut is *not* the even
  one), and the ``slapo-pp`` evaluator sweeps the zoo's transformer
  families × GPU counts as a Fig. 7-style panel.

Run via ``make perf``; committing the refreshed JSON records the
trajectory over PRs (``scripts/check_bench.py`` guards regressions).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_pipeline.json"

FAMILIES = ("BERT", "RoBERTa", "GPT", "OPT", "T5", "WideResNet")
GPU_COUNTS = (2, 4, 8)


def stage_accuracy_probe() -> dict:
    """Imbalanced 2-stage GPT: stage-resolved vs uniform /pp pricing."""
    import repro.slapo as slapo
    from repro.distributed import P3DN_NODE, ParallelConfig
    from repro.models import MODEL_ZOO, data
    from repro.schedules import SCHEDULES
    from repro.sim import (even_cuts, plan_pipeline_cuts, step_time,
                           throughput, trace_model)

    cls, config = MODEL_ZOO["GPT"]
    model = cls(config, device="meta")
    sch = slapo.create_schedule(model)
    SCHEDULES["GPT"](sch, config, ckpt_ratio=0.0, use_tp=False)
    ids, _ = data.lm_batch(config, 1, device="meta")
    trace = trace_model(model, ids)
    parallel = ParallelConfig(tp=4, pp=2)
    micro, m = 1, 8

    lopsided = (len(trace.layers) // 4,)  # deliberately imbalanced
    uniform = step_time(trace, model, P3DN_NODE, parallel, micro,
                        num_micro_batches=m)
    staged = step_time(trace, model, P3DN_NODE, parallel, micro,
                       num_micro_batches=m, pipeline_cuts=lopsided)
    even = even_cuts(len(trace.layers), 2)
    plan = plan_pipeline_cuts(trace, model, P3DN_NODE, parallel, micro, m)
    thr_even = throughput(trace, model, P3DN_NODE, parallel, micro,
                          num_micro_batches=m, pipeline_cuts=even)
    thr_planned = throughput(trace, model, P3DN_NODE, parallel, micro,
                             num_micro_batches=m, pipeline_cuts=plan.cuts)
    return {
        "num_layers": len(trace.layers),
        "lopsided_cuts": list(lopsided),
        "uniform_step_seconds": uniform.total,
        "lopsided_step_seconds": staged.total,
        "stage_times": list(staged.detail["stage_times"]),
        "bottleneck_stage": staged.detail["bottleneck_stage"],
        "even_cuts": list(even),
        "planned_cuts": list(plan.cuts),
        "throughput_even_split": thr_even,
        "throughput_planned_split": thr_planned,
        "planned_vs_even_speedup": thr_planned / thr_even,
    }


def schedule_panel() -> dict:
    """Tick-program schedules on GPT: per-schedule step times at the
    planned cuts, the zb-vs-1F1B bubble win at equal memory, and the
    schedule the joint tuner search picks on its own."""
    import repro.slapo as slapo
    from repro.distributed import P3DN_NODE, ParallelConfig
    from repro.models import MODEL_ZOO, data
    from repro.pipeline import DEFAULT_SCHEDULE, SCHEDULE_NAMES
    from repro.schedules import SCHEDULES
    from repro.sim import plan_pipeline_schedule, trace_model
    from repro.slapo.tuner import (AutoTuner, SimCostModel,
                                   parallelism_symbols)

    cls, config = MODEL_ZOO["GPT"]
    model = cls(config, device="meta")
    sch = slapo.create_schedule(model)
    SCHEDULES["GPT"](sch, config, ckpt_ratio=0.0, use_tp=False)
    ids, _ = data.lm_batch(config, 1, device="meta")
    trace = trace_model(model, ids)
    parallel = ParallelConfig(tp=4, pp=2)

    plan = plan_pipeline_schedule(trace, model, P3DN_NODE, parallel,
                                  micro_batch=2, num_micro_batches=8)
    candidates = {
        c.schedule: {"step_seconds": c.step_seconds,
                     "peak_memory_gib": c.peak_memory / 2**30,
                     "fits": c.fits}
        for c in plan.candidates
    }
    base = plan.candidate(DEFAULT_SCHEDULE)
    best = plan.candidate(plan.schedule)
    print(f"\n{'schedule':>12} {'step (s)':>10} {'peak (GiB)':>11} fits")
    for name, row in candidates.items():
        marker = " <- planned" if name == plan.schedule else ""
        print(f"{name:>12} {row['step_seconds']:>10.4f} "
              f"{row['peak_memory_gib']:>11.2f} {row['fits']!s:>5}"
              f"{marker}")

    def update(space):
        parallelism_symbols(space, 8, pipeline_schedules=SCHEDULE_NAMES)
        space.create_symbol("micro_batch", [1, 2])

    cost_model = SimCostModel(
        lambda _config: (model, trace), P3DN_NODE,
        parallel=SimCostModel.parallel_fn(8),
        trace_key_fn=lambda _config: "shared")
    result = AutoTuner(
        update,
        lambda cfg: cost_model.estimate(cfg).throughput).exhaustive()
    tuner_schedule = result.best_config.get("pipeline_schedule",
                                            DEFAULT_SCHEDULE)
    print(f"joint tuner winner: {result.best_config}")
    return {
        "parallel": {"tp": parallel.tp, "pp": parallel.pp},
        "planned_cuts": list(plan.cuts),
        "candidates": candidates,
        "planner_selected_schedule": plan.schedule,
        "zb_vs_1f1b_speedup":
            base.step_seconds / candidates["zb"]["step_seconds"],
        "tuner_selected_schedule": tuner_schedule,
        "tuner_best_config": dict(result.best_config),
    }


def slapo_pp_panel() -> dict:
    """Fig. 7-style panel: slapo-pp across families × GPU counts."""
    from repro.baselines import EVALUATORS
    from repro.baselines.systems import _TRACE_CACHE
    from repro.distributed import P3DN_NODE

    _TRACE_CACHE.clear()  # measure cold, like a fresh process
    panel: dict = {}
    start = time.perf_counter()
    print(f"\n{'family':>12} " + " ".join(f"{n:>10}" for n in GPU_COUNTS)
          + "   (samples/sec, slapo-pp TP×PP=2)")
    for family in FAMILIES:
        row = {}
        for num_gpus in GPU_COUNTS:
            result = EVALUATORS["slapo-pp"](family, P3DN_NODE, num_gpus)
            row[str(num_gpus)] = {
                "supported": result.supported,
                "throughput": result.throughput,
                "micro_batch": result.micro_batch,
                "num_micro_batches": result.num_micro_batches,
                "ckpt_ratio": result.ckpt_ratio,
                "pipeline_cuts": list(result.pipeline_cuts),
            }
        panel[family] = row
        cells = " ".join(
            f"{row[str(n)]['throughput']:>10.1f}"
            if row[str(n)]["supported"] else f"{'X':>10}"
            for n in GPU_COUNTS)
        print(f"{family:>12} {cells}")
    return {"seconds": time.perf_counter() - start, "panel": panel}


def main() -> None:
    probe = stage_accuracy_probe()
    assert probe["uniform_step_seconds"] != probe["lopsided_step_seconds"], \
        "stage-resolved pricing must differ from the uniform /pp estimate"
    assert probe["planned_vs_even_speedup"] > 1.0, \
        "the cut planner must beat the naive even-layer split"
    schedules = schedule_panel()
    assert schedules["zb_vs_1f1b_speedup"] > 1.0, \
        "zero-bubble must beat 1F1B at equal per-stage memory"
    assert schedules["planner_selected_schedule"] != "1f1b", \
        "plan_pipeline_schedule must find the bubble win"
    assert schedules["tuner_selected_schedule"] != "1f1b", \
        "the joint tuner search must pick a non-default schedule"
    panel = slapo_pp_panel()
    report = {
        "benchmark": "pipeline",
        "python": platform.python_version(),
        "stage_accuracy": probe,
        "schedules": schedules,
        "slapo_pp_panel": panel,
        "headline": {
            "planned_vs_even_speedup": probe["planned_vs_even_speedup"],
            "zb_vs_1f1b_speedup": schedules["zb_vs_1f1b_speedup"],
            "tuner_selected_schedule":
                schedules["tuner_selected_schedule"],
            "gpt_8gpu_throughput":
                panel["panel"]["GPT"]["8"]["throughput"],
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["headline"], indent=2))
    print(f"\nwrote {OUTPUT}")


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    main()
