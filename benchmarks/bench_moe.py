"""Mixture-of-experts benchmark panel — what the expert axis buys.

Two questions, answered with numbers written to ``BENCH_moe.json``:

* **Does expert sharding pay per step?**  For the registered MoE-GPT
  model on a 16-GPU (2 × p3dn) spec, compare the predicted optimizer-step
  time of the dense layout (every rank holds every expert) against
  ep-sharded layouts for ep ∈ {1, 2, 4, 8} at a fixed micro-batch — the
  per-GPU expert compute, gradient traffic and optimizer work shrink
  with ep while the dispatch/combine all-to-alls (priced via
  ``ClusterSpec.collective_coeffs("all_to_all", ...)``) grow.
* **Is the joint optimum non-trivial?**  For an expert-heavy variant
  (64 experts ≈ 13B expert parameters) sweep the tp × ep grid with the
  planner: fully replicated experts must not fit, and the best feasible
  configuration must use ep > 1 — the scenario the tuner's joint
  tp/pp/dp/ep search exists for.

Run via ``make perf``; committing the refreshed JSON records the
trajectory over PRs (``scripts/check_bench.py`` guards regressions).
"""

from __future__ import annotations

import itertools
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_moe.json"

EP_SWEEP = (1, 2, 4, 8)
WORLD_SIZE = 16
MICRO_BATCH = 4


def _sharded_trace(config, tp: int, ep: int):
    import repro.slapo as slapo
    from repro.distributed import DeviceMesh, ParallelConfig
    from repro.models import MODEL_ZOO, data
    from repro.schedules import schedule_moe_gpt
    from repro.sim import trace_model

    cls, _ = MODEL_ZOO["MoE-GPT"]
    model = cls(config, device="meta")
    mesh = DeviceMesh(ParallelConfig(tp=tp, ep=ep), rank=0, sim=True)
    sch = slapo.create_schedule(model, mesh=mesh)
    schedule_moe_gpt(sch, config)
    built = slapo.build(sch).model
    ids, _ = data.lm_batch(config, 1, device="meta")
    return built, trace_model(built, ids)


def ep_step_panel() -> dict:
    """Dense vs ep-sharded predicted step time, registered MoE-GPT."""
    from repro.distributed import ParallelConfig, p3dn_cluster
    from repro.models import MODEL_ZOO
    from repro.sim import step_time

    _, config = MODEL_ZOO["MoE-GPT"]
    cluster = p3dn_cluster(WORLD_SIZE // 8)
    panel = {}
    for ep in EP_SWEEP:
        model, trace = _sharded_trace(config, tp=1, ep=ep)
        parallel = ParallelConfig(dp=WORLD_SIZE // ep, ep=ep)
        breakdown = step_time(trace, model, cluster, parallel, MICRO_BATCH)
        panel[str(ep)] = {
            "step_seconds": breakdown.total,
            "ep_comm_seconds": breakdown.ep_comm,
            "dp_comm_seconds": breakdown.dp_comm,
            "optimizer_seconds": breakdown.optimizer,
        }
    print(f"\n{'ep':>4} {'step':>10} {'ep_comm':>10} {'dp_comm':>10}"
          f"   ({config.name}, {WORLD_SIZE} GPUs, micro={MICRO_BATCH})")
    for ep in EP_SWEEP:
        row = panel[str(ep)]
        print(f"{ep:>4} {row['step_seconds'] * 1e3:>8.1f}ms "
              f"{row['ep_comm_seconds'] * 1e3:>8.2f}ms "
              f"{row['dp_comm_seconds'] * 1e3:>8.1f}ms")
    return panel


def joint_optimum_probe() -> dict:
    """Expert-heavy tp × ep sweep: the best feasible shape needs ep > 1."""
    from repro.distributed import ParallelConfig, p3dn_cluster
    from repro.models import MoEConfig
    from repro.sim import predict_config

    config = MoEConfig(
        name="moe-gpt-64e", vocab_size=50304, hidden_size=1024,
        num_layers=12, num_heads=16, intermediate_size=4096,
        max_seq_len=1024, causal=True, num_experts=64, top_k=2,
        capacity_factor=1.25)
    cluster = p3dn_cluster(WORLD_SIZE // 8)
    grid = {}
    best = None
    for tp, ep in itertools.product((1, 2, 4), EP_SWEEP):
        if tp * ep > WORLD_SIZE:
            continue
        dp = WORLD_SIZE // (tp * ep)
        model, trace = _sharded_trace(config, tp=tp, ep=ep)
        prediction = predict_config(trace, model, cluster,
                                    ParallelConfig(tp=tp, dp=dp, ep=ep),
                                    micro_batch=None)
        cell = {
            "fits": prediction.fits,
            "throughput": prediction.throughput,
            "micro_batch": prediction.micro_batch,
        }
        grid[f"tp{tp}_ep{ep}"] = cell
        if prediction.fits and (best is None
                                or prediction.throughput
                                > best[0].throughput):
            best = (prediction, tp, ep, dp)
    assert best is not None, "no feasible configuration on the grid"
    prediction, tp, ep, dp = best
    print(f"\n{config.name}: best shape tp={tp} ep={ep} dp={dp} "
          f"({prediction.throughput:.1f} samples/s)")
    return {
        "model": config.name,
        "grid": grid,
        "best": {"tp": tp, "ep": ep, "dp": dp,
                 "throughput": prediction.throughput},
        "dense_fits": grid["tp1_ep1"]["fits"],
    }


def main() -> None:
    start = time.perf_counter()
    panel = ep_step_panel()
    probe = joint_optimum_probe()
    dense = panel["1"]["step_seconds"]
    best_ep = min(EP_SWEEP, key=lambda ep: panel[str(ep)]["step_seconds"])
    assert best_ep > 1, \
        "expert sharding must beat the dense layout on per-step time"
    assert not probe["dense_fits"], \
        "the expert-heavy probe must not fit fully replicated"
    assert probe["best"]["ep"] > 1, \
        "the joint optimum must use the expert axis"
    report = {
        "benchmark": "moe",
        "python": platform.python_version(),
        "seconds": time.perf_counter() - start,
        "ep_step_panel": panel,
        "joint_optimum": probe,
        "headline": {
            "ep_sharded_step_speedup":
                dense / panel[str(best_ep)]["step_seconds"],
            "best_ep_step_seconds": panel[str(best_ep)]["step_seconds"],
            "joint_best_throughput": probe["best"]["throughput"],
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["headline"], indent=2))
    print(f"\nwrote {OUTPUT}")


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    main()
