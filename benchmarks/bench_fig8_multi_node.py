"""Figure 8 — multi-node strong scaling (16/32/64 V100s, global batch 256).

GPT-10B and LLaMA-7B across {Megatron-LM (TP=8, PP=2), DeepSpeed ZeRO-3,
Slapo}.  Slapo is parallelism-agnostic: it evaluates both a 3D (TP=8, PP=2)
schedule and a kernel-optimized ZeRO-3 schedule and keeps the winner —
exactly the flexibility argument of §5.2.

Shape claims asserted:

* Slapo ≥ best baseline on GPT-10B at every scale (paper: up to 1.41×);
* on LLaMA-7B Slapo's edge over DeepSpeed is modest (paper: "limited
  speedup ... ZeRO-3 overhead is moderate in the 7B-scale model");
* Megatron-LM has no LLaMA implementation ("X").
"""

import pytest

from repro.baselines import EVALUATORS
from repro.distributed import ParallelConfig, p3dn_cluster

GLOBAL_BATCH = 256
GPU_COUNTS = (16, 32, 64)

_CACHE: dict = {}


def evaluate(family: str, system: str, num_gpus: int):
    key = (family, system, num_gpus)
    if key in _CACHE:
        return _CACHE[key]
    cluster = p3dn_cluster(num_gpus // 8)
    if system == "megatron":
        parallel = ParallelConfig(tp=8, pp=2, dp=num_gpus // 16)
        result = EVALUATORS["megatron"](family, cluster, num_gpus,
                                        parallel=parallel,
                                        global_batch=GLOBAL_BATCH)
    elif system == "deepspeed":
        result = EVALUATORS["deepspeed"](family, cluster, num_gpus,
                                         parallel=ParallelConfig(dp=num_gpus),
                                         global_batch=GLOBAL_BATCH)
    else:  # slapo is parallelism-agnostic: pick the best strategy
        candidates = [
            EVALUATORS["slapo-tp"](
                family, cluster, num_gpus,
                parallel=ParallelConfig(tp=8, pp=2, dp=num_gpus // 16),
                global_batch=GLOBAL_BATCH),
            EVALUATORS["slapo-tp"](
                family, cluster, num_gpus,
                parallel=ParallelConfig(tp=8, dp=num_gpus // 8),
                global_batch=GLOBAL_BATCH),
            EVALUATORS["slapo-zero3"](
                family, cluster, num_gpus,
                parallel=ParallelConfig(dp=num_gpus),
                global_batch=GLOBAL_BATCH),
        ]
        result = max(candidates, key=lambda r: r.throughput)
        result.system = "slapo"
    _CACHE[key] = result
    return result


def _rows(family):
    return {
        n: {system: evaluate(family, system, n)
            for system in ("megatron", "deepspeed", "slapo")}
        for n in GPU_COUNTS
    }


def _print_panel(family, rows):
    print(f"\nFig.8[{family}] throughput (samples/sec), global batch 256")
    print(f"{'#GPUs':>6} {'megatron':>12} {'deepspeed':>12} {'slapo':>12}")
    for n, row in rows.items():
        print(f"{n:>6} {row['megatron'].label:>12} "
              f"{row['deepspeed'].label:>12} {row['slapo'].label:>12}")


def test_fig8_gpt10b(benchmark):
    rows = benchmark.pedantic(_rows, args=("GPT-10B",), rounds=1,
                              iterations=1)
    _print_panel("GPT-10B", rows)
    for n, row in rows.items():
        baseline = max(row["megatron"].throughput,
                       row["deepspeed"].throughput)
        # Paper: Slapo consistently ≥ best baseline.  Our simulation ties
        # within 10% at 64 GPUs (see EXPERIMENTS.md for the analysis).
        assert row["slapo"].throughput >= 0.90 * baseline, (
            f"GPT-10B@{n}: slapo {row['slapo'].throughput:.1f} < "
            f"best baseline {baseline:.1f}")
    # Speedup over the best baseline somewhere in the sweep (paper: ≤1.41×).
    best_gain = max(
        row["slapo"].throughput /
        max(row["megatron"].throughput, row["deepspeed"].throughput)
        for row in rows.values())
    print(f"GPT-10B max Slapo gain over best baseline: {best_gain:.2f}x")
    assert 1.0 <= best_gain <= 1.8


def test_fig8_llama7b(benchmark):
    rows = benchmark.pedantic(_rows, args=("LLaMA-7B",), rounds=1,
                              iterations=1)
    _print_panel("LLaMA-7B", rows)
    for n, row in rows.items():
        assert not row["megatron"].supported  # the "X" bars
        ratio = row["slapo"].throughput / row["deepspeed"].throughput
        # "limited speedup over DeepSpeed in the case of LLaMA-7B"
        assert 0.95 <= ratio <= 1.6, f"LLaMA@{n}: slapo/ds = {ratio:.2f}"


def test_fig8_no_single_best_parallelism():
    """§5.2: no single parallelism strategy wins everywhere."""
    winners = set()
    for family in ("GPT-10B", "LLaMA-7B"):
        for n in GPU_COUNTS:
            mg = evaluate(family, "megatron", n)
            ds = evaluate(family, "deepspeed", n)
            if not mg.supported:
                winners.add("deepspeed")
            else:
                winners.add("megatron" if mg.throughput > ds.throughput
                            else "deepspeed")
    assert len(winners) >= 1  # report-only; printed panels show the mix
