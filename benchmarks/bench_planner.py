"""Batch-planner benchmark — the headline configs-per-second number.

Prices a Megatron-scale GPT space (tp × pp × dp × micro-batch × ZeRO at
world size 1024, >10k configurations) two ways:

* the scalar oracle loop the tuner used before: ``parallel_fn`` +
  ``predict_config`` per configuration;
* one :func:`repro.sim.predict_batch` call over the columnar
  :class:`~repro.sim.batch.BatchPoints` view of the same space (plus,
  for reference, the mapping-input path that pays per-row
  normalization).

Both paths are timed steady-state (shared trace caches warmed), so the
speedup is the honest ratio of pricing rates, not a cache artifact; the
differential suite (``tests/sim/test_batch_predict.py``) separately
asserts the answers are equal config-for-config.

A second panel times the :class:`MeasurementPool` against sequential
in-process measurement on I/O-bound trials, the worker-pool speedup.

Writes ``BENCH_planner.json`` at the repo root (run via ``make perf``).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_planner.json"

WORLD_SIZE = 1024
FAMILY = "GPT"
#: per-trial sleep for the worker-pool panel (I/O-bound stand-in for a
#: short measured trial)
TRIAL_SECONDS = 0.05
POOL_TRIALS = 16
POOL_WORKERS = 4


def build_trace():
    import repro.slapo as slapo
    from repro.models import MODEL_ZOO, data
    from repro.schedules import SCHEDULES
    from repro.sim import trace_model

    cls, config = MODEL_ZOO[FAMILY]
    config = config.tiny()
    model = cls(config, device="meta")
    sch = slapo.create_schedule(model)
    SCHEDULES[FAMILY](sch, config, ckpt_ratio=0.0, use_tp=False)
    ids, _ = data.lm_batch(config, 1, device="meta")
    return model, trace_model(model, ids)


def build_space():
    from repro.slapo.tuner.space import enumerate_space, parallelism_symbols

    def update(space):
        parallelism_symbols(space, WORLD_SIZE, max_tp=32, max_pp=64,
                            min_micro_batches=(1, 2, 3, 4, 6, 8, 12, 16))
        space.create_symbol("zero_stage", [0, 1, 2, 3])
        space.create_symbol("micro_batch",
                            [1, 2, 3, 4, 6, 8, 12, 16, 24, 32])

    return enumerate_space(update)


def time_planner() -> dict:
    from repro.distributed import p3dn_cluster
    from repro.sim import BatchPoints, predict_batch, predict_config
    from repro.slapo.tuner import SimCostModel

    model, trace = build_trace()
    cluster = p3dn_cluster(WORLD_SIZE // 8)
    configs = build_space()
    parallel_fn = SimCostModel.parallel_fn(WORLD_SIZE)

    def scalar_pass() -> int:
        feasible = 0
        for config in configs:
            try:
                parallel = parallel_fn(config)
            except ValueError:
                continue
            prediction = predict_config(
                trace, model, cluster, parallel, config["micro_batch"],
                zero_stage=config["zero_stage"],
                num_micro_batches=config.get("num_micro_batches", 1))
            feasible += prediction.fits
        return feasible

    # Warm the shared per-trace caches (kernel-time sums, tick-program
    # expressibility) once: both paths benefit identically, so the
    # steady-state ratio below reflects pricing work, not cache fills.
    scalar_pass()
    start = time.perf_counter()
    feasible = scalar_pass()
    scalar_seconds = time.perf_counter() - start

    # mapping input: pays the per-row normalization loop
    start = time.perf_counter()
    batch = predict_batch(trace, model, cluster, configs,
                          parallel_fn=parallel_fn)
    dict_seconds = time.perf_counter() - start

    # columnar input: the all-numpy fast path (best of 5)
    points = BatchPoints.from_configs(configs, parallel_fn=parallel_fn)
    columnar_seconds = min(
        _timed(lambda: predict_batch(trace, model, cluster, points))
        for _ in range(5))

    assert batch.num_feasible == feasible, "batch disagrees with scalar"
    n = len(configs)
    return {
        "space": {"configs": n, "world_size": WORLD_SIZE,
                  "family": FAMILY, "feasible": batch.num_feasible,
                  "vectorized": batch.num_vectorized,
                  "fallback": batch.num_fallback},
        "scalar_loop": {
            "seconds": scalar_seconds,
            "per_config_latency_us": scalar_seconds / n * 1e6,
        },
        "batch_predict": {
            "seconds": columnar_seconds,
            "configs_per_second": n / columnar_seconds,
            "speedup_vs_scalar": scalar_seconds / columnar_seconds,
            "dict_input_seconds": dict_seconds,
            "dict_input_speedup": scalar_seconds / dict_seconds,
        },
    }


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _pool_trial(config: dict) -> float:
    time.sleep(TRIAL_SECONDS)
    return 1.0 + config["i"]


def time_worker_pool() -> dict:
    from repro.slapo.tuner import MeasurementPool

    configs = [{"i": i} for i in range(POOL_TRIALS)]
    start = time.perf_counter()
    for config in configs:
        _pool_trial(config)
    sequential_seconds = time.perf_counter() - start
    with MeasurementPool(_pool_trial, num_workers=POOL_WORKERS,
                         trial_timeout=30.0) as pool:
        start = time.perf_counter()
        results = pool.run(configs)
        pool_seconds = time.perf_counter() - start
    assert all(not r.lost for r in results)
    return {
        "trials": POOL_TRIALS,
        "workers": POOL_WORKERS,
        "sequential_seconds": sequential_seconds,
        "pool_seconds": pool_seconds,
        "speedup": sequential_seconds / pool_seconds,
    }


def main() -> None:
    planner = time_planner()
    pool = time_worker_pool()
    report = {
        "benchmark": "planner",
        "python": platform.python_version(),
        **planner,
        "worker_pool": pool,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {OUTPUT}")


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    main()
