"""Thousand-GPU topology panel — what hierarchy-aware pricing buys.

Two questions, answered with numbers written to ``BENCH_topology.json``
for 1024- and 4096-GPU A100 clusters (two link tiers: NVLink islands
joined by a rail-optimized HDR fabric):

* **Does placement matter?**  Price the same tp=8 GPT-2.9B layout with
  tensor parallelism on the NVLink island (``order=("tp","ep","dp","pp")``,
  dp striding across nodes) against the pathological inversion (dp
  innermost, the tp all-reduces of every layer crossing the IB fabric).
  The gap is the cost of getting placement wrong — and sweeping every
  tuned placement order must hand the win to tp-intra-node, which is the
  planner-prefers-tp-inside assertion of the PR.
* **Does comm/compute overlap pay at scale?**  With dp spanning hundreds
  of nodes the gradient all-reduce is expensive; bucketed
  ``overlap_grad_sync`` pricing must hide most of it under the backward
  window and beat the serial timeline.

Run via ``make perf``; committing the refreshed JSON records the
trajectory over PRs (``scripts/check_bench.py`` guards regressions).
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_topology.json"

TP = 8
MICRO_BATCH = 1
#: (panel label, number of A100 nodes) — 1024 and 4096 GPUs
WORLDS = (("1024", 128), ("4096", 512))


def _tp_sharded_gpt():
    import repro.slapo as slapo
    from repro.distributed import DeviceMesh, ParallelConfig
    from repro.models import MODEL_ZOO, data
    from repro.schedules import schedule_gpt
    from repro.sim import trace_model

    cls, config = MODEL_ZOO["GPT"]
    model = cls(config, device="meta")
    mesh = DeviceMesh(ParallelConfig(tp=TP), rank=0, sim=True)
    sch = slapo.create_schedule(model, mesh=mesh)
    schedule_gpt(sch, config)
    built = slapo.build(sch).model
    ids, _ = data.lm_batch(config, 1, device="meta")
    return config, built, trace_model(built, ids)


def _tp_spans_nodes(cluster, parallel) -> bool:
    from repro.distributed.mesh import axis_ranks

    return cluster.spans_nodes(axis_ranks(0, parallel)["tp"])


def placement_panel(model, trace, cluster, world: int) -> dict:
    """Good vs bad axis placement, plus the full tuned-placement sweep."""
    from repro.distributed import ParallelConfig
    from repro.sim import step_time
    from repro.slapo.tuner.space import DEFAULT_PLACEMENTS

    dp = world // TP
    sweep = {}
    best_order = None
    for placement in DEFAULT_PLACEMENTS:
        order = tuple(placement.split(","))
        parallel = ParallelConfig(tp=TP, dp=dp, order=order)
        breakdown = step_time(trace, model, cluster, parallel, MICRO_BATCH)
        sweep[placement] = {
            "step_seconds": breakdown.total,
            "tp_comm_seconds": breakdown.tp_comm,
            "dp_comm_seconds": breakdown.dp_comm,
            "tp_crosses_nodes": _tp_spans_nodes(cluster, parallel),
        }
        if best_order is None \
                or breakdown.total < sweep[best_order]["step_seconds"]:
            best_order = placement
    good = ParallelConfig(tp=TP, dp=dp)
    bad = ParallelConfig(tp=TP, dp=dp, order=("dp", "ep", "tp", "pp"))
    t_good = step_time(trace, model, cluster, good, MICRO_BATCH)
    t_bad = step_time(trace, model, cluster, bad, MICRO_BATCH)
    return {
        "world_size": world,
        "tp": TP, "dp": dp,
        "placement_sweep": sweep,
        "best_placement": best_order,
        "good_step_seconds": t_good.total,
        "bad_step_seconds": t_bad.total,
        "placement_gap_speedup": t_bad.total / t_good.total,
    }


#: bucket sizes swept by the overlap panel (MiB).  At hundreds of dp
#: ranks the ring alpha is milliseconds per bucket, so the DDP-style
#: 25 MiB default drowns in latency — the sweep shows bucket size is a
#: real tuning knob, and the panel reports the best point
BUCKET_SWEEP_MB = (25.0, 100.0, 200.0, 400.0, 800.0)


def overlap_panel(model, trace, cluster, world: int) -> dict:
    """Serial vs bucketed-overlap dp gradient sync at scale."""
    from repro.distributed import ParallelConfig
    from repro.sim import step_time

    parallel = ParallelConfig(tp=TP, dp=world // TP)
    plain = step_time(trace, model, cluster, parallel, MICRO_BATCH)
    sweep = {}
    best_mb = None
    for bucket_mb in BUCKET_SWEEP_MB:
        breakdown = step_time(trace, model, cluster, parallel, MICRO_BATCH,
                              overlap_grad_sync=True,
                              overlap_bucket_mb=bucket_mb)
        sweep[str(bucket_mb)] = {
            "step_seconds": breakdown.total,
            "dp_comm_exposed_seconds": breakdown.dp_comm,
            "dp_comm_hidden_seconds": breakdown.dp_comm_hidden,
        }
        if best_mb is None \
                or breakdown.total < sweep[str(best_mb)]["step_seconds"]:
            best_mb = bucket_mb
    best = sweep[str(best_mb)]
    return {
        "world_size": world,
        "plain_step_seconds": plain.total,
        "bucket_sweep": sweep,
        "best_bucket_mb": best_mb,
        "overlap_step_seconds": best["step_seconds"],
        "overlap_speedup": plain.total / best["step_seconds"],
        "dp_comm_exposed_seconds": best["dp_comm_exposed_seconds"],
        "dp_comm_hidden_seconds": best["dp_comm_hidden_seconds"],
    }


def main() -> None:
    from repro.distributed import a100_cluster

    start = time.perf_counter()
    config, model, trace = _tp_sharded_gpt()
    panels = {}
    for label, nodes in WORLDS:
        cluster = a100_cluster(nodes)
        placement = placement_panel(model, trace, cluster,
                                    cluster.world_size)
        overlap = overlap_panel(model, trace, cluster, cluster.world_size)
        panels[label] = {"placement": placement, "overlap": overlap}

        # the acceptance assertions of the topology PR, per world size
        assert placement["placement_gap_speedup"] > 1.0, \
            "tp-inside-the-node must beat tp-across-the-fabric"
        best = placement["placement_sweep"][placement["best_placement"]]
        assert not best["tp_crosses_nodes"], \
            "the planner-swept best placement must keep tp on NVLink"
        assert overlap["overlap_speedup"] >= 1.0, \
            "bucketed overlap must never lose to the serial timeline"
        assert overlap["dp_comm_hidden_seconds"] > 0.0, \
            "overlap must report dp gradient traffic as hidden"

        print(f"\n[{label} GPUs] {config.name}, tp={TP} "
              f"dp={placement['dp']}")
        for order, cell in placement["placement_sweep"].items():
            marker = " <-- best" if order == placement["best_placement"] \
                else ""
            print(f"  {order:<14} {cell['step_seconds'] * 1e3:>9.1f}ms "
                  f"(tp_comm {cell['tp_comm_seconds'] * 1e3:.1f}ms, "
                  f"crosses nodes: {cell['tp_crosses_nodes']}){marker}")
        print(f"  placement gap: {placement['placement_gap_speedup']:.2f}x"
              f"   overlap: {overlap['overlap_speedup']:.3f}x "
              f"({overlap['dp_comm_hidden_seconds'] * 1e3:.1f}ms hidden)")

    report = {
        "benchmark": "topology",
        "python": platform.python_version(),
        "seconds": time.perf_counter() - start,
        "model": config.name,
        "worlds": panels,
        "headline": {
            "placement_gap_speedup_1024":
                panels["1024"]["placement"]["placement_gap_speedup"],
            "placement_gap_speedup_4096":
                panels["4096"]["placement"]["placement_gap_speedup"],
            "overlap_speedup_1024":
                panels["1024"]["overlap"]["overlap_speedup"],
            "overlap_speedup_4096":
                panels["4096"]["overlap"]["overlap_speedup"],
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["headline"], indent=2))
    print(f"\nwrote {OUTPUT}")


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    main()
