"""Figure 9 — ablation of the BERT schedule's optimization steps.

Starting from vanilla HuggingFace BERT on one V100 and progressively
applying the schedule primitives:

    vanilla → +kernel opt → +attn/FFN TP (8 GPUs) → +embedding TP

Paper speedups: 1.00× → 1.18× → 4.21× → 5.69×.  The assertions check the
progression is monotone and each step lands in a generous band around the
paper's factor.
"""

import pytest

import repro.slapo as slapo
from repro.baselines.systems import _example_inputs
from repro.distributed import DeviceMesh, P3DN_NODE, ParallelConfig
from repro.models import MODEL_ZOO
from repro.schedules import SCHEDULES
from repro.sim import plan_micro_batch, trace_model
from repro.sim.kernel_cost import cost_model_for

FAMILY = "BERT"


def _throughput(parallel, framework, **schedule_kwargs):
    cls, config = MODEL_ZOO[FAMILY]
    best = 0.0
    for ratio in (0.0, 0.25, 0.5, 1.0):
        model = cls(config, device="meta")
        mesh = DeviceMesh(parallel, rank=0, sim=True)
        sch = slapo.create_schedule(model, mesh=mesh)
        SCHEDULES[FAMILY](sch, config, ckpt_ratio=ratio, **schedule_kwargs)
        trace = trace_model(model, *_example_inputs(FAMILY, config))
        plan = plan_micro_batch(trace, model, P3DN_NODE, parallel,
                                cost_model=cost_model_for(framework))
        if plan is not None:
            best = max(best, plan.throughput)
    return best


def _ablation():
    one = ParallelConfig()
    eight = ParallelConfig(tp=8)
    steps = {}
    steps["vanilla"] = _throughput(one, "hf", use_flash=False,
                                   use_fusion=False, use_tp=False)
    steps["+kernel opt"] = _throughput(one, "slapo", use_flash=True,
                                       use_fusion=True, use_tp=False)
    steps["+attn/FFN TP"] = _throughput(eight, "slapo", use_flash=True,
                                        use_fusion=True, use_tp=True,
                                        shard_embedding=False)
    steps["+embedding TP"] = _throughput(eight, "slapo", use_flash=True,
                                         use_fusion=True, use_tp=True,
                                         shard_embedding=True)
    return steps


PAPER_SPEEDUPS = {
    "vanilla": 1.00,
    "+kernel opt": 1.18,
    "+attn/FFN TP": 4.21,
    "+embedding TP": 5.69,
}


def test_fig9_ablation(benchmark):
    steps = benchmark.pedantic(_ablation, rounds=1, iterations=1)
    base = steps["vanilla"]
    print("\nFig.9 BERT ablation (speedup over vanilla):")
    print(f"{'step':>16} {'samples/s':>10} {'measured':>9} {'paper':>7}")
    speedups = {}
    for name, rate in steps.items():
        speedups[name] = rate / base
        print(f"{name:>16} {rate:>10.1f} {speedups[name]:>8.2f}x "
              f"{PAPER_SPEEDUPS[name]:>6.2f}x")

    order = list(steps.values())
    assert order == sorted(order), "each schedule step must help"
    # Kernel optimizations alone: paper 1.18× (allow 1.05-1.6).
    assert 1.05 <= speedups["+kernel opt"] <= 1.6
    # TP to 8 GPUs: paper 4.21× (allow 2.5-6.5).
    assert 2.5 <= speedups["+attn/FFN TP"] <= 6.5
    # Embedding sharding adds a further jump: paper 5.69× total (3.5-8).
    assert 3.5 <= speedups["+embedding TP"] <= 8.0
    assert speedups["+embedding TP"] > speedups["+attn/FFN TP"]
