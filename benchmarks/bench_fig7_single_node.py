"""Figure 7 — single-node training throughput.

Regenerates the paper's 6-panel figure: every Table-3 model × {2, 4, 8}
V100s × {Megatron-LM, Slapo-TP, DeepSpeed, Slapo-ZeRO3}.  Absolute numbers
come from the simulator; the assertions check the paper's *shape* claims:

* Slapo (best variant) matches or beats the best baseline on every model;
* Slapo-TP ≥ ~1.0× Megatron-LM on the models Megatron supports, with BERT
  showing the largest TP gain (paper: 1.02–1.46×, BERT up to 1.73×);
* Slapo-ZeRO3 beats DeepSpeed by 1.0–1.8× (paper: 1.04–1.64×);
* Megatron-LM supports only BERT/GPT/T5 (the "X" entries).
"""

import pytest

from repro.baselines import EVALUATORS
from repro.distributed import P3DN_NODE

FAMILIES = ("BERT", "RoBERTa", "GPT", "OPT", "T5", "WideResNet")
SYSTEMS = ("megatron", "slapo-tp", "deepspeed", "slapo-zero3")
GPU_COUNTS = (2, 4, 8)

_CACHE: dict = {}


def evaluate(family: str, system: str, num_gpus: int):
    key = (family, system, num_gpus)
    if key not in _CACHE:
        _CACHE[key] = EVALUATORS[system](family, P3DN_NODE, num_gpus)
    return _CACHE[key]


def _family_rows(family):
    rows = {}
    for n in GPU_COUNTS:
        rows[n] = {system: evaluate(family, system, n)
                   for system in SYSTEMS}
    return rows


def _print_panel(family, rows):
    print(f"\nFig.7[{family}] throughput (samples/sec) on p3dn.24xlarge")
    header = f"{'#GPUs':>6} " + " ".join(f"{s:>12}" for s in SYSTEMS)
    print(header)
    for n, row in rows.items():
        cells = " ".join(f"{row[s].label:>12}" for s in SYSTEMS)
        print(f"{n:>6} {cells}")


@pytest.mark.parametrize("family", FAMILIES)
def test_fig7_panel(benchmark, family):
    rows = benchmark.pedantic(_family_rows, args=(family,), rounds=1,
                              iterations=1)
    _print_panel(family, rows)
    for n, row in rows.items():
        slapo_best = max(row["slapo-tp"].throughput,
                         row["slapo-zero3"].throughput)
        baseline_best = max(
            (row[s].throughput for s in ("megatron", "deepspeed")
             if row[s].supported), default=0.0)
        # Headline claim: Slapo aligns with or outperforms the best baseline.
        assert slapo_best >= 0.95 * baseline_best, (
            f"{family}@{n}: slapo {slapo_best:.1f} < "
            f"baseline {baseline_best:.1f}")
        # Slapo-ZeRO3 vs DeepSpeed: paper band 1.04-1.64 (we allow 0.98-1.9).
        ratio = row["slapo-zero3"].throughput / row["deepspeed"].throughput
        assert 0.98 <= ratio <= 1.9, f"{family}@{n}: zero3/ds = {ratio:.2f}"
        if row["megatron"].supported:
            tp_ratio = row["slapo-tp"].throughput / \
                row["megatron"].throughput
            assert tp_ratio >= 0.9, \
                f"{family}@{n}: slapo-tp/megatron = {tp_ratio:.2f}"


def test_fig7_megatron_model_coverage():
    """The 'X' bars: Megatron-LM cannot run RoBERTa/OPT/WideResNet."""
    for family in ("RoBERTa", "OPT", "WideResNet"):
        assert not evaluate(family, "megatron", 8).supported
    for family in ("BERT", "GPT", "T5"):
        assert evaluate(family, "megatron", 8).supported


def test_fig7_bert_shows_largest_tp_gain():
    """BERT is where Slapo-TP shines over Megatron (paper: up to 1.73×)."""
    gains = {}
    for family in ("BERT", "GPT", "T5"):
        best = 0.0
        for n in GPU_COUNTS:
            mg = evaluate(family, "megatron", n)
            tp = evaluate(family, "slapo-tp", n)
            if mg.supported and mg.throughput > 0:
                best = max(best, tp.throughput / mg.throughput)
        gains[family] = best
    print(f"\nFig.7 max Slapo-TP/Megatron gains: "
          f"{ {k: round(v, 2) for k, v in gains.items()} }")
    assert gains["BERT"] >= gains["GPT"] - 0.05
    assert gains["BERT"] >= 1.02


def test_fig7_selective_checkpointing_uses_intermediate_ratios():
    """Slapo's tuner may pick partial ratios; baselines cannot."""
    ratios = {evaluate(f, "slapo-zero3", 8).ckpt_ratio for f in FAMILIES}
    baseline = {evaluate(f, "deepspeed", 8).ckpt_ratio for f in FAMILIES}
    assert baseline <= {0.0, 1.0}
