"""Functionalize + CSE + fusion benchmark — simulated step-time effect.

Builds the same GPT twice through the schedule language:

* **baseline** — every transformer block traced (``.trace(flatten=True)``)
  but otherwise untouched;
* **optimized** — each traced block additionally functionalized
  (``.functionalize(cse=True, fuse=True, compiler="TorchInductor")``),
  so elementwise chains collapse into :class:`FusedKernel` regions the
  recorder folds to one launch each.

Both models are traced on the meta device and priced by the same
:class:`~repro.sim.KernelCostModel`; the headline is the forward+backward
kernel-time speedup from fewer launches, less intermediate HBM traffic,
and the fused backend's streaming-efficiency factor
(``SUPPORTED_COMPILERS``).  Numerics equivalence of the functionalized
form is asserted separately by the differential suite
(``tests/slapo/test_functionalize_verify.py`` and the fuzz corpus with
``functionalize=True``).

Writes ``BENCH_fusion.json`` at the repo root (run via ``make perf``).
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_fusion.json"

FAMILY = "GPT"
NUM_LAYERS = 4
COMPILER = "TorchInductor"


def build_model(optimize: bool):
    import repro.slapo as slapo
    from repro.framework import manual_seed
    from repro.models import MODEL_ZOO

    cls, config = MODEL_ZOO[FAMILY]
    cfg = config.tiny(num_layers=NUM_LAYERS)
    manual_seed(0)
    model = cls(cfg, device="meta")
    sch = slapo.create_schedule(model)
    for i in range(cfg.num_layers):
        block = sch[f"transformer.h.{i}"]
        block.trace(flatten=True)
        if optimize:
            block.functionalize(cse=True, fuse=True, compiler=COMPILER)
    return slapo.build(sch).model, cfg


def main() -> None:
    from repro.distributed.topology import GPUSpec
    from repro.models import data
    from repro.sim import KernelCostModel, trace_model

    baseline, cfg = build_model(optimize=False)
    optimized, _ = build_model(optimize=True)
    ids, _ = data.lm_batch(cfg, 1, device="meta")
    base_trace = trace_model(baseline, ids)
    opt_trace = trace_model(optimized, ids)

    fused_kernels = sum(1 for op in opt_trace.ops
                        if op.kernel.startswith("fused:"))
    assert fused_kernels > 0, "no elementwise chains fused"

    cost = KernelCostModel(GPUSpec())
    base_seconds = cost.forward_time(base_trace) \
        + cost.backward_time(base_trace)
    opt_seconds = cost.forward_time(opt_trace) \
        + cost.backward_time(opt_trace)
    assert opt_seconds < base_seconds, \
        "fusion did not improve simulated step time"

    report = {
        "benchmark": "fusion",
        "python": platform.python_version(),
        "model": {"family": FAMILY, "layers": cfg.num_layers,
                  "compiler": COMPILER},
        "graph": {
            "launches_baseline": len(base_trace.ops),
            "launches_fused": len(opt_trace.ops),
            "fused_kernels": fused_kernels,
        },
        "step_time": {
            "baseline_seconds": base_seconds,
            "fused_seconds": opt_seconds,
            "speedup": base_seconds / opt_seconds,
        },
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {OUTPUT}")


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    main()
