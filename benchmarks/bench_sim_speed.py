"""Simulator speed benchmark — the perf trajectory of the pricing oracle.

Times the two hot paths the tuner and the paper-figure benchmarks lean on:

* one full ``EVALUATORS`` sweep (every Fig. 7 family × all four systems on
  8 GPUs) — exercises build-once tracing, analytic checkpoint re-pricing,
  and the planner's micro-batch sweep;
* a 64-configuration ``predict_config`` sweep over one BERT trace — the
  auto-tuner's oracle loop, which must never re-walk the model or op list;
* the combined Fig. 7 + Fig. 8 benchmark wall-clock (one pytest run of
  both files) — the end-to-end number the paper-figure suite pays.

Writes ``BENCH_sim_speed.json`` at the repo root (run via ``make perf``);
committing the refreshed file records the perf trajectory over PRs.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_sim_speed.json"

FAMILIES = ("BERT", "RoBERTa", "GPT", "OPT", "T5", "WideResNet")
#: the original four contenders — pinned so the trajectory stays
#: comparable across PRs (the slapo-pp panel is timed by
#: bench_pipeline.py)
SYSTEMS = ("megatron", "deepspeed", "slapo-tp", "slapo-zero3")


def time_evaluators_sweep() -> dict:
    """One full Fig. 7-style sweep: families × systems at 8 GPUs."""
    from repro.baselines import EVALUATORS
    from repro.baselines.systems import _TRACE_CACHE
    from repro.distributed import P3DN_NODE

    _TRACE_CACHE.clear()  # measure cold, like a fresh process
    evaluations = 0
    start = time.perf_counter()
    for family in FAMILIES:
        for system in SYSTEMS:
            EVALUATORS[system](family, P3DN_NODE, 8)
            evaluations += 1
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "evaluations": evaluations,
            "families": len(FAMILIES)}


def time_predict_sweep(num_configs: int = 64) -> dict:
    """The tuner's oracle loop: price many configs off one trace."""
    from repro.distributed import P3DN_NODE, ParallelConfig
    from repro.models import MODEL_ZOO, data
    from repro.sim import predict_config, trace_model

    cls, config = MODEL_ZOO["BERT"]
    model = cls(config, device="meta")
    ids, _ = data.lm_batch(config, 1, device="meta")
    trace = trace_model(model, ids)
    configs = []
    for micro_batch in (1, 2, 4, 8, 12, 16, 24, 32):
        for zero_stage in (0, 3):
            for dp in (2, 4, 8, 16):
                configs.append((micro_batch, zero_stage, dp))
    configs = configs[:num_configs]
    assert len(configs) == num_configs
    start = time.perf_counter()
    feasible = 0
    for micro_batch, zero_stage, dp in configs:
        prediction = predict_config(trace, model, P3DN_NODE,
                                    ParallelConfig(dp=dp), micro_batch,
                                    zero_stage=zero_stage)
        feasible += prediction.fits
    elapsed = time.perf_counter() - start
    # steady-state per-config latency: the oracle loop with the trace
    # caches warm, i.e. what every tuner probe after the first pays
    start = time.perf_counter()
    for micro_batch, zero_stage, dp in configs:
        predict_config(trace, model, P3DN_NODE, ParallelConfig(dp=dp),
                       micro_batch, zero_stage=zero_stage)
    warm = time.perf_counter() - start
    return {"seconds": elapsed, "configs": num_configs,
            "feasible": feasible,
            "per_config_latency_us": warm / num_configs * 1e6}


def time_fig7_fig8_wall_clock() -> dict:
    """Combined pytest wall-clock of the Fig. 7 + Fig. 8 benchmark files."""
    start = time.perf_counter()
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
         "benchmarks/bench_fig7_single_node.py",
         "benchmarks/bench_fig8_multi_node.py"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "passed": result.returncode == 0}


def main() -> None:
    sweep = time_evaluators_sweep()
    predict = time_predict_sweep()
    figs = time_fig7_fig8_wall_clock()
    report = {
        "benchmark": "sim_speed",
        "python": platform.python_version(),
        "evaluators_sweep": sweep,
        "predict_config_64": predict,
        "fig7_fig8_wall_clock": figs,
        "total_seconds": sweep["seconds"] + predict["seconds"],
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {OUTPUT}")


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    main()
