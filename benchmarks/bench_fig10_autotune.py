"""Figure 10 + §5.4 — auto-tuning an OPT-350M model on 8 V100s.

The search space is the paper's Fig. 6 polygon: batch size 104–176 (step 8)
× checkpoint ratio {0.25..0.67}, extended with {0.84, 0.92, 1.0} when the
batch is ≥ 120.  High batch with little checkpointing runs out of memory
(the grey region); the tuner must find the throughput peak while exploring
a small fraction of the 91-point space via randomized coordinate descent.

Shape claims: OOM region exists; ≥30% best-vs-worst gap among valid
configs; coordinate descent explores ≲30% of the space, matches the
exhaustive optimum closely, and cuts search time by a large factor
(paper: 17/91 configs, 20 vs 139 minutes, −86%).
"""

import pytest

import repro.slapo as slapo
from repro.distributed import DeviceMesh, P3DN_NODE, ParallelConfig
from repro.models import MODEL_ZOO, data
from repro.schedules import SCHEDULES
from repro.sim import model_memory, throughput, trace_model
from repro.sim.kernel_cost import cost_model_for
from repro.slapo.tuner import AutoTuner, enumerate_space

FAMILY = "OPT-350M"
PARALLEL = ParallelConfig(dp=8)

_TRACES: dict = {}


def paper_fig6_space(space):
    bs = space.create_symbol("batch_size", range(104, 177, 8))
    ckpt_ratio_cand = [0.67, 0.5, 0.34, 0.25]
    if bs >= 120:
        ckpt_ratio_cand += [1.0, 0.92, 0.84]
    space.create_symbol("ckpt_ratio", ckpt_ratio_cand)
    return space


def _traced(ratio):
    if ratio not in _TRACES:
        cls, config = MODEL_ZOO[FAMILY]
        model = cls(config, device="meta")
        mesh = DeviceMesh(PARALLEL, rank=0, sim=True)
        sch = slapo.create_schedule(model, mesh=mesh)
        # The Fig. 10 study tunes only (batch, ckpt ratio): the naive
        # attention keeps its quadratic activations, which is what carves
        # the OOM region out of the upper-left of the grid.
        SCHEDULES[FAMILY](sch, config, ckpt_ratio=ratio, use_tp=False,
                          use_flash=False)
        ids, _ = data.lm_batch(config, 1, device="meta")
        _TRACES[ratio] = (model, trace_model(model, ids))
    return _TRACES[ratio]


def evaluate_config(config):
    """Samples/sec of one (batch_size, ckpt_ratio) point; 0 on OOM."""
    batch, ratio = config["batch_size"], config["ckpt_ratio"]
    micro = batch // PARALLEL.dp
    model, trace = _traced(ratio)
    memory = model_memory(model, trace, micro, zero_stage=0,
                          dp_size=PARALLEL.dp)
    if memory.total > P3DN_NODE.gpu.usable_memory:
        return 0.0
    return throughput(trace, model, P3DN_NODE, PARALLEL, micro,
                      cost_model=cost_model_for("slapo"))


def test_fig10_autotune(benchmark):
    tuner = AutoTuner(paper_fig6_space, evaluate_config, seed=0)
    assert len(tuner.configs) == 64 or len(tuner.configs) == 91 or \
        len(tuner.configs) > 50  # polygon space (Fig. 6 region)
    exhaustive = AutoTuner(paper_fig6_space, evaluate_config).exhaustive()
    cd = benchmark.pedantic(tuner.coordinate_descent, rounds=1, iterations=1)

    print(f"\nFig.10 OPT-350M auto-tuning on 8 V100 "
          f"({len(tuner.configs)}-config space)")
    print("throughput grid (samples/sec; 0 = OOM):")
    batches = sorted({c["batch_size"] for c in tuner.configs}, reverse=True)
    ratios = sorted({c["ckpt_ratio"] for c in tuner.configs})
    header = "bs/ratio"
    print(f"{header:>9} " + " ".join(f"{r:>6}" for r in ratios))
    grid = {(t.config["batch_size"], t.config["ckpt_ratio"]): t.throughput
            for t in exhaustive.trials}
    for bs in batches:
        cells = " ".join(
            f"{grid.get((bs, r), float('nan')):>6.0f}"
            if (bs, r) in grid else f"{'-':>6}" for r in ratios)
        print(f"{bs:>9} {cells}")

    explored_pct = 100.0 * cd.num_trials / len(tuner.configs)
    saving = 1 - cd.search_seconds / exhaustive.search_seconds
    print(f"best (exhaustive): {exhaustive.best_config} "
          f"-> {exhaustive.best_throughput:.1f}")
    print(f"best (coord-desc): {cd.best_config} "
          f"-> {cd.best_throughput:.1f}")
    print(f"explored {cd.num_trials}/{len(tuner.configs)} configs "
          f"({explored_pct:.0f}%), search time saving {saving:.0%} "
          f"(paper: 17/91 = 19%, saving 86%)")

    # The OOM cliff (grey region of Fig. 6) exists.
    invalid = [t for t in exhaustive.trials if not t.valid]
    assert invalid, "expected an OOM region at high batch + low ckpt ratio"
    # Meaningful spread between best and worst valid configs (paper: >30%;
    # our simulated surface is flatter — ~12% — because the recompute
    # penalty is the only throughput knob once memory fits; see
    # EXPERIMENTS.md).
    valid = [t.throughput for t in exhaustive.trials if t.valid]
    assert max(valid) / min(valid) >= 1.10
    # Coordinate descent efficiency.
    assert cd.num_trials <= 0.45 * len(tuner.configs)
    assert cd.best_throughput >= 0.97 * exhaustive.best_throughput
    assert saving >= 0.5


def test_fig10_oom_at_high_batch_low_ckpt():
    """The failure region sits where Fig. 6 puts it."""
    aggressive = evaluate_config({"batch_size": 176, "ckpt_ratio": 0.25})
    conservative = evaluate_config({"batch_size": 104, "ckpt_ratio": 0.67})
    assert conservative > 0
    full_ckpt_large = evaluate_config({"batch_size": 176, "ckpt_ratio": 1.0})
    assert full_ckpt_large > 0
