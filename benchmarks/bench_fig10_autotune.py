"""Figure 10 + §5.4 — auto-tuning an OPT-350M model on 8 V100s.

The search space is the paper's Fig. 6 polygon: batch size 104–176 (step 8)
× checkpoint ratio {0.25..0.67}, extended with {0.84, 0.92, 1.0} when the
batch is ≥ 120.  High batch with little checkpointing runs out of memory
(the grey region); the tuner must find the throughput peak while exploring
a small fraction of the 91-point space.

Four strategies are compared on the same space: exhaustive (the
baseline), randomized coordinate descent (as in the paper), cost-model-
guided top-k (``simulator_guided``, the analytical simulator as a
pruning-and-ranking oracle), and evolutionary search with a cost-model
fitness prefilter.

Shape claims: OOM region exists; ≥10% best-vs-worst gap among valid
configs; coordinate descent explores ≲30% of the space and cuts search
time by a large factor (paper: 17/91 configs, 20 vs 139 minutes, −86%);
simulator-guided reaches ≥95% of the exhaustive optimum with ≤30% of the
exhaustive trial count.
"""

import pytest

import repro.slapo as slapo
from repro.distributed import DeviceMesh, P3DN_NODE, ParallelConfig
from repro.models import MODEL_ZOO, data
from repro.schedules import SCHEDULES
from repro.sim import model_memory, throughput, trace_model
from repro.sim.kernel_cost import KernelCostModel, cost_model_for
from repro.slapo.tuner import AutoTuner, SimCostModel, enumerate_space

FAMILY = "OPT-350M"
PARALLEL = ParallelConfig(dp=8)

_TRACES: dict = {}


def paper_fig6_space(space):
    bs = space.create_symbol("batch_size", range(104, 177, 8))
    ckpt_ratio_cand = [0.67, 0.5, 0.34, 0.25]
    if bs >= 120:
        ckpt_ratio_cand += [1.0, 0.92, 0.84]
    space.create_symbol("ckpt_ratio", ckpt_ratio_cand)
    return space


def _traced(ratio):
    if ratio not in _TRACES:
        cls, config = MODEL_ZOO[FAMILY]
        model = cls(config, device="meta")
        mesh = DeviceMesh(PARALLEL, rank=0, sim=True)
        sch = slapo.create_schedule(model, mesh=mesh)
        # The Fig. 10 study tunes only (batch, ckpt ratio): the naive
        # attention keeps its quadratic activations, which is what carves
        # the OOM region out of the upper-left of the grid.
        SCHEDULES[FAMILY](sch, config, ckpt_ratio=ratio, use_tp=False,
                          use_flash=False)
        ids, _ = data.lm_batch(config, 1, device="meta")
        _TRACES[ratio] = (model, trace_model(model, ids))
    return _TRACES[ratio]


def evaluate_config(config):
    """Samples/sec of one (batch_size, ckpt_ratio) point; 0 on OOM."""
    batch, ratio = config["batch_size"], config["ckpt_ratio"]
    micro = batch // PARALLEL.dp
    model, trace = _traced(ratio)
    memory = model_memory(model, trace, micro, zero_stage=0,
                          dp_size=PARALLEL.dp)
    if memory.total > P3DN_NODE.gpu.usable_memory:
        return 0.0
    return throughput(trace, model, P3DN_NODE, PARALLEL, micro,
                      cost_model=cost_model_for("slapo"))


def test_fig10_autotune(benchmark):
    tuner = AutoTuner(paper_fig6_space, evaluate_config, seed=0)
    assert len(tuner.configs) == 64 or len(tuner.configs) == 91 or \
        len(tuner.configs) > 50  # polygon space (Fig. 6 region)
    exhaustive = AutoTuner(paper_fig6_space, evaluate_config).exhaustive()
    cd = benchmark.pedantic(tuner.coordinate_descent, rounds=1, iterations=1)

    print(f"\nFig.10 OPT-350M auto-tuning on 8 V100 "
          f"({len(tuner.configs)}-config space)")
    print("throughput grid (samples/sec; 0 = OOM):")
    batches = sorted({c["batch_size"] for c in tuner.configs}, reverse=True)
    ratios = sorted({c["ckpt_ratio"] for c in tuner.configs})
    header = "bs/ratio"
    print(f"{header:>9} " + " ".join(f"{r:>6}" for r in ratios))
    grid = {(t.config["batch_size"], t.config["ckpt_ratio"]): t.throughput
            for t in exhaustive.trials}
    for bs in batches:
        cells = " ".join(
            f"{grid.get((bs, r), float('nan')):>6.0f}"
            if (bs, r) in grid else f"{'-':>6}" for r in ratios)
        print(f"{bs:>9} {cells}")

    explored_pct = 100.0 * cd.num_trials / len(tuner.configs)
    saving = 1 - cd.search_seconds / exhaustive.search_seconds
    print(f"best (exhaustive): {exhaustive.best_config} "
          f"-> {exhaustive.best_throughput:.1f}")
    print(f"best (coord-desc): {cd.best_config} "
          f"-> {cd.best_throughput:.1f}")
    print(f"explored {cd.num_trials}/{len(tuner.configs)} configs "
          f"({explored_pct:.0f}%), search time saving {saving:.0%} "
          f"(paper: 17/91 = 19%, saving 86%)")

    # The OOM cliff (grey region of Fig. 6) exists.
    invalid = [t for t in exhaustive.trials if not t.valid]
    assert invalid, "expected an OOM region at high batch + low ckpt ratio"
    # Meaningful spread between best and worst valid configs (paper: >30%;
    # our simulated surface is flatter — ~12% — because the recompute
    # penalty is the only throughput knob once memory fits; see
    # EXPERIMENTS.md).
    valid = [t.throughput for t in exhaustive.trials if t.valid]
    assert max(valid) / min(valid) >= 1.10
    # Coordinate descent efficiency.
    assert cd.num_trials <= 0.45 * len(tuner.configs)
    assert cd.best_throughput >= 0.97 * exhaustive.best_throughput
    assert saving >= 0.5


def make_cost_model() -> SimCostModel:
    """The simulator as a pruning/ranking oracle for the Fig. 6 space.

    The oracle prices kernels with the generic V100 cost model while the
    "measurement" uses the slapo-tuned efficiency profile, so predictions
    carry a small systematic bias — predicted-vs-measured error stays
    nonzero, as it would be against a real cluster.
    """
    return SimCostModel(
        trace_fn=lambda config: _traced(config["ckpt_ratio"]),
        trace_key_fn=lambda config: config["ckpt_ratio"],
        cluster=P3DN_NODE,
        parallel=PARALLEL,
        kernel_cost=KernelCostModel(P3DN_NODE.gpu),
    )


def test_fig10_strategy_comparison():
    """All four strategies on the Fig. 6 space, reported on one footing."""
    cost_model = make_cost_model()
    exhaustive = AutoTuner(paper_fig6_space, evaluate_config).exhaustive()
    cd = AutoTuner(paper_fig6_space, evaluate_config,
                   seed=0).coordinate_descent()
    sg = AutoTuner(paper_fig6_space, evaluate_config, seed=0,
                   cost_model=cost_model).simulator_guided()
    ev = AutoTuner(paper_fig6_space, evaluate_config, seed=0,
                   cost_model=cost_model).evolutionary(
                       population=8, generations=4)

    results = [exhaustive, cd, sg, ev]
    space = exhaustive.report.space_size
    print(f"\nFig.10 strategy comparison on the {space}-config OPT-350M "
          f"space (8×V100)")
    print(f"{'strategy':>20} {'trials':>7} {'pruned':>7} {'best':>8} "
          f"{'search_min':>10} {'saved':>6} {'pred_err':>8}")
    for result in results:
        report = result.report
        saving = 1 - result.search_seconds / exhaustive.search_seconds
        print(f"{report.strategy:>20} "
              f"{report.num_trials:>7} {report.num_pruned:>7} "
              f"{result.best_throughput:>8.1f} "
              f"{result.search_seconds / 60:>10.1f} {saving:>6.0%} "
              f"{report.mean_prediction_error:>8.1%}")

    # Every strategy carries a complete report.
    for result in results:
        assert result.report is not None
        assert result.report.num_trials == result.num_trials
        assert result.report.search_seconds == result.search_seconds

    # Acceptance: simulator-guided ≥95% of the exhaustive optimum with
    # ≤30% of the exhaustive trial count, and far less search time.
    assert sg.best_throughput >= 0.95 * exhaustive.best_throughput
    assert sg.num_trials <= 0.30 * exhaustive.num_trials
    # Seconds saving is smaller than the trial-count saving because the
    # exhaustive baseline's OOM trials fail fast (20s vs 92s) while the
    # oracle only ever schedules full-length, feasible measurements.
    assert sg.search_seconds < 0.45 * exhaustive.search_seconds
    # The OOM region is pruned by the oracle, never measured.
    assert sg.report.num_pruned > 0
    assert all(t.valid for t in sg.trials)
    # Predictions track measurements (same memory model, slightly
    # different kernel-efficiency profile).
    assert 0.0 < sg.report.mean_prediction_error < 0.15
    # Evolutionary search competes within the same budget regime.
    assert ev.best_throughput >= 0.95 * exhaustive.best_throughput
    assert ev.num_trials < exhaustive.num_trials


def test_fig10_trial_cache_roundtrip(tmp_path):
    """A second tuning run over the same space costs zero search seconds."""
    from repro.slapo.tuner import TrialCache

    path = tmp_path / "fig10_trials.json"
    cost_model = make_cost_model()
    first = AutoTuner(paper_fig6_space, evaluate_config, seed=0,
                      cost_model=cost_model,
                      cache=TrialCache(path)).simulator_guided()
    assert first.search_seconds > 0
    cache = TrialCache(path)
    assert len(cache) == first.num_trials
    second = AutoTuner(paper_fig6_space, evaluate_config, seed=0,
                       cost_model=cost_model,
                       cache=cache).simulator_guided()
    assert second.best_config == first.best_config
    assert second.search_seconds == 0.0
    assert second.report.num_cache_hits == second.num_trials


def test_fig10_oom_at_high_batch_low_ckpt():
    """The failure region sits where Fig. 6 puts it."""
    aggressive = evaluate_config({"batch_size": 176, "ckpt_ratio": 0.25})
    conservative = evaluate_config({"batch_size": 104, "ckpt_ratio": 0.67})
    assert conservative > 0
    full_ckpt_large = evaluate_config({"batch_size": 176, "ckpt_ratio": 1.0})
    assert full_ckpt_large > 0
