"""Table 5 — extending Slapo with new primitives.

The three user-contributed primitives (.quantize / .bind / .cudagraphify)
are implemented through the public ``@register_primitive()`` interface;
this bench measures their implementation size and demonstrates each one
working end-to-end, mirroring the paper's extensibility study.
"""

import inspect

import repro.slapo as slapo
from repro import framework as fw
from repro.framework import functional as F
from repro.slapo.primitives import extras

PAPER_LOC = {"quantize": 11, "bind": 95, "cudagraphify": 16}

PRIMITIVE_CLASSES = {
    "quantize": extras.QuantizePrimitive,
    "bind": extras.BindPrimitive,
    "cudagraphify": extras.CudaGraphifyPrimitive,
}


def _loc(cls) -> int:
    lines = [line for line in inspect.getsource(cls).splitlines()
             if line.strip() and not line.strip().startswith(("#", '"""'))]
    return len(lines)


def test_table5_primitive_loc(benchmark):
    rows = benchmark.pedantic(
        lambda: {name: _loc(cls) for name, cls in PRIMITIVE_CLASSES.items()},
        rounds=1, iterations=1)
    print("\nTable 5: extensible-primitive implementation size")
    print(f"{'primitive':>14} {'measured LoC':>13} {'paper LoC':>10}")
    for name, measured in rows.items():
        print(f"{name:>14} {measured:>13} {PAPER_LOC[name]:>10}")
        # Same order of magnitude as the paper's engineering report.
        assert measured <= PAPER_LOC[name] * 3 + 30


class TinyNet(fw.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = fw.Linear(8, 16)
        self.fc2 = fw.Linear(16, 8)

    def forward(self, x):
        return self.fc2(F.gelu(self.fc1(x)))


def test_table5_primitives_work_end_to_end():
    fw.manual_seed(0)
    model = TinyNet()
    x = fw.randn(4, 8)
    baseline = model(x).numpy()

    sch = slapo.create_schedule(model)
    sch["fc1"].quantize(bits=8)
    sch["fc2"].bind(
        lambda mod, inp: F.linear(inp, mod.weight, mod.bias),
        validate_input=(fw.randn(4, 16),))
    sch["fc2"].cudagraphify()

    out = model(x).numpy()
    assert out.shape == baseline.shape
    assert model.fc1._slapo_meta.get("quantized") or \
        model.fc1.inner is not None


def test_table5_registry_lists_all():
    names = slapo.list_primitives()
    for name in ("quantize", "bind", "cudagraphify", "shard", "sync",
                 "replace", "checkpoint", "trace", "find", "fuse",
                 "pipeline_split", "decompose"):
        assert name in names
