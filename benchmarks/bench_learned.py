"""Learned cost model benchmark — residual correction vs pure analytic.

Reruns the Fig. 10 study (OPT-350M, 8 V100, the Fig. 6 batch ×
checkpoint-ratio polygon) against a *biased* measurement surface: every
measured throughput carries a multiplicative recompute-efficiency bias
the analytic simulator knows nothing about (recomputed kernels run
hotter in cache, so heavy checkpointing loses less than first-principles
pricing says).  The bias reorders the surface — the true optimum moves
to a config the analytic oracle ranks deep in its list — which is
exactly the regime the learned residual model exists for.

Panels (written to ``BENCH_learned.json``, gated by
``scripts/check_bench.py``):

* **trials-to-optimum** — how many trials a rank-ordered measurement
  sweep needs before it hits the exhaustive optimum: the analytic
  ordering vs the residual ordering after
  :meth:`ResidualCostModel.fit_from_cache` on the corpus the standard
  14-trial ``simulator_guided`` run left behind.  The residual model
  must beat both the analytic rank and the 14-trial budget itself.
* **held-out error** — mean relative prediction error over the feasible
  configs *not* in the training corpus, analytic vs residual.
* **transfer** — the OPT-350M-trained correction applied zero-shot to a
  second model family (BERT) on the same grid: held-out error must
  improve there too, demonstrating the corpus-constant features drop
  out of both the regression and the coverage guard.

Everything is deterministic (seeded tuner, analytic simulator, closed
-form bias), so the JSON is byte-stable across runs on one machine.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_learned.json"

#: the Fig. 10 family the corpus is collected on, and the transfer target
TRAIN_FAMILY = "OPT-350M"
TRANSFER_FAMILY = "BERT"
#: the injected analytic bias: measured = analytic-surface ×
#: (1 − RECOMPUTE_BIAS × (1 − ckpt_ratio)) — recompute-heavy configs
#: lose less than the simulator prices, so the optimum shifts toward
#: full checkpointing at large batch
RECOMPUTE_BIAS = 0.25

_TRACES: dict = {}


def fig6_space(space):
    bs = space.create_symbol("batch_size", range(104, 177, 8))
    ratios = [0.67, 0.5, 0.34, 0.25]
    if bs >= 120:
        ratios += [1.0, 0.92, 0.84]
    space.create_symbol("ckpt_ratio", ratios)
    return space


def traced(family: str, ratio: float):
    if (family, ratio) not in _TRACES:
        import repro.slapo as slapo
        from repro.distributed import DeviceMesh, ParallelConfig
        from repro.models import MODEL_ZOO, data
        from repro.schedules import SCHEDULES
        from repro.sim import trace_model

        cls, config = MODEL_ZOO[family]
        model = cls(config, device="meta")
        mesh = DeviceMesh(ParallelConfig(dp=8), rank=0, sim=True)
        sch = slapo.create_schedule(model, mesh=mesh)
        SCHEDULES[family](sch, config, ckpt_ratio=ratio, use_tp=False,
                          use_flash=False)
        ids, _ = data.lm_batch(config, 1, device="meta")
        _TRACES[(family, ratio)] = (model, trace_model(model, ids))
    return _TRACES[(family, ratio)]


def bias(config: dict) -> float:
    return 1.0 - RECOMPUTE_BIAS * (1.0 - config["ckpt_ratio"])


def make_measure(family: str):
    """The biased measurement surface for one family (0 on OOM)."""
    from repro.distributed import P3DN_NODE, ParallelConfig
    from repro.sim import model_memory, throughput
    from repro.sim.kernel_cost import cost_model_for

    parallel = ParallelConfig(dp=8)

    def measure(config: dict) -> float:
        model, trace = traced(family, config["ckpt_ratio"])
        micro = config["batch_size"] // parallel.dp
        memory = model_memory(model, trace, micro, zero_stage=0,
                              dp_size=parallel.dp)
        if memory.total > P3DN_NODE.gpu.usable_memory:
            return 0.0
        return throughput(trace, model, P3DN_NODE, parallel, micro,
                          cost_model=cost_model_for("slapo")) * bias(config)

    return measure


def make_analytic(family: str):
    """The analytic oracle: generic V100 kernel pricing, no bias."""
    from repro.distributed import P3DN_NODE, ParallelConfig
    from repro.sim.kernel_cost import KernelCostModel
    from repro.slapo.tuner import SimCostModel

    return SimCostModel(
        trace_fn=lambda config: traced(family, config["ckpt_ratio"]),
        trace_key_fn=lambda config: config["ckpt_ratio"],
        cluster=P3DN_NODE,
        parallel=ParallelConfig(dp=8),
        kernel_cost=KernelCostModel(P3DN_NODE.gpu),
    )


def rank_of(model, configs, target_key) -> int | None:
    """1-based rank of ``target_key`` in the model's feasible ordering —
    the measured-trials budget a rank-ordered sweep needs to reach it."""
    from repro.slapo.tuner.cache import config_key

    feasible = [(estimate.throughput, config)
                for config, estimate in zip(configs,
                                            model.predict_many(configs))
                if estimate.fits and estimate.throughput > 0]
    feasible.sort(key=lambda pair: -pair[0])
    for position, (_, config) in enumerate(feasible, start=1):
        if config_key(config) == target_key:
            return position
    return None


def heldout_error(model, configs, truth, exclude=()) -> tuple[float, int]:
    """Mean relative error over feasible configs outside ``exclude``."""
    from repro.slapo.tuner.cache import config_key

    errors = []
    estimates = model.predict_many(configs)
    for config, estimate in zip(configs, estimates):
        key = config_key(config)
        measured = truth[key]
        if key in exclude or measured <= 0 or not estimate.fits \
                or estimate.throughput <= 0:
            continue
        errors.append(abs(estimate.throughput - measured) / measured)
    return (sum(errors) / len(errors) if errors else 0.0), len(errors)


def run() -> dict:
    import tempfile

    from repro.slapo.tuner import (
        AutoTuner,
        ResidualCostModel,
        TrialCache,
        enumerate_space,
    )
    from repro.slapo.tuner.cache import config_key

    configs = enumerate_space(fig6_space)
    measure = make_measure(TRAIN_FAMILY)
    truth = {config_key(config): measure(config) for config in configs}
    best_key, best_rate = max(truth.items(), key=lambda item: item[1])

    # -- the standard analytic-guided run builds the corpus ------------- #
    cache_path = Path(tempfile.mkdtemp()) / "learned_trials.json"
    analytic = make_analytic(TRAIN_FAMILY)
    analytic_run = AutoTuner(fig6_space, measure, seed=0,
                             cost_model=analytic,
                             cache=TrialCache(cache_path)
                             ).simulator_guided()
    corpus_keys = {config_key(trial.config)
                   for trial in analytic_run.trials}

    # -- residual correction from that corpus --------------------------- #
    residual = ResidualCostModel(analytic)
    corpus_size = residual.fit_from_cache(TrialCache(cache_path))
    residual_run = AutoTuner(fig6_space, measure, seed=0,
                             cost_model=make_analytic(TRAIN_FAMILY),
                             cache=TrialCache(cache_path)
                             ).simulator_guided(cost_model="residual")

    analytic_rank = rank_of(analytic, configs, best_key)
    residual_rank = rank_of(residual, configs, best_key)
    analytic_err, _ = heldout_error(analytic, configs, truth,
                                    exclude=corpus_keys)
    residual_err, held = heldout_error(residual, configs, truth,
                                       exclude=corpus_keys)

    # -- zero-shot transfer to a second family -------------------------- #
    transfer_measure = make_measure(TRANSFER_FAMILY)
    transfer_truth = {config_key(config): transfer_measure(config)
                      for config in configs}
    transfer_analytic = make_analytic(TRANSFER_FAMILY)
    transfer_residual = ResidualCostModel(transfer_analytic,
                                          learned=residual.learned)
    t_analytic_err, t_rows = heldout_error(transfer_analytic, configs,
                                           transfer_truth)
    t_residual_err, _ = heldout_error(transfer_residual, configs,
                                      transfer_truth)
    t_corrected = sum(1 for config in configs
                      if transfer_residual.rank_source(config)
                      == "residual")

    report = {
        "space_size": len(configs),
        "recompute_bias": RECOMPUTE_BIAS,
        "true_optimum": json.loads(best_key),
        "true_optimum_throughput": round(best_rate, 3),
        "corpus": {
            "family": TRAIN_FAMILY,
            "measured_trials": analytic_run.report.num_measured,
            "fitted_rows": corpus_size,
            "analytic_found_optimum":
                config_key(analytic_run.best_config) == best_key,
            "residual_found_optimum":
                config_key(residual_run.best_config) == best_key,
            "residual_new_measurements":
                residual_run.report.num_measured,
            "residual_rankers": residual_run.report.rankers,
        },
        "trials_to_optimum": {
            "analytic": analytic_rank,
            "residual": residual_rank,
            "analytic_run_budget": analytic_run.report.num_trials,
        },
        "heldout": {
            "configs": held,
            "analytic_mean_relative_error": round(analytic_err, 5),
            "residual_mean_relative_error": round(residual_err, 5),
        },
        "transfer": {
            "family": TRANSFER_FAMILY,
            "configs": t_rows,
            "corrected_configs": t_corrected,
            "analytic_mean_relative_error": round(t_analytic_err, 5),
            "residual_mean_relative_error": round(t_residual_err, 5),
        },
    }

    # The headline claims, asserted so `make bench` fails loudly if the
    # learned model stops earning its keep.
    assert residual_rank is not None and analytic_rank is not None
    assert residual_rank < analytic_rank, \
        "residual ordering must beat the analytic ordering"
    assert residual_rank < analytic_run.report.num_trials, \
        "residual must reach the optimum under the 14-trial budget"
    assert config_key(residual_run.best_config) == best_key, \
        "residual-guided search must find the true optimum"
    assert residual_err < analytic_err, \
        "held-out error must improve on the biased corpus"
    assert t_residual_err < t_analytic_err, \
        "the correction must transfer to a second family"
    return report


def test_learned_cost_model_bench():
    """Pytest entry (``make bench``): run the panels, check the claims."""
    report = run()
    print(json.dumps(report, indent=2))


def main() -> None:
    report = dict(run())
    report["platform"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    main()
