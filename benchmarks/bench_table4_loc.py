"""Table 4 — lines of schedule code per model.

Counts the real, executable schedule bodies shipped in
:mod:`repro.schedules` and compares with the paper's numbers.  The exact
counts differ (our template library factors slightly differently) but stay
within ~2.5× and far below the >1000-line model implementations the paper
contrasts against.
"""

from repro.schedules import PAPER_LOC, table4


def test_table4_schedule_loc(benchmark):
    rows = benchmark.pedantic(table4, rounds=1, iterations=1)
    print("\nTable 4: schedule lines of code")
    print(f"{'model':>12} {'measured':>9} {'paper':>6}")
    for family, row in rows.items():
        print(f"{family:>12} {row['measured']:>9} {row['paper']:>6}")
    for family, row in rows.items():
        assert row["measured"] <= row["paper"] * 2.5
        assert row["measured"] < 60, "schedules must stay ~tens of lines"


def test_table4_schedules_far_smaller_than_models():
    """The usability claim: ~20 lines of schedule vs >1000 lines of model."""
    import inspect

    from repro.models import bert as bert_model
    from repro.schedules import schedule_loc, SCHEDULE_SOURCES

    model_loc = len(inspect.getsource(bert_model).splitlines())
    sched_loc = schedule_loc(SCHEDULE_SOURCES["BERT"])
    assert sched_loc * 5 < model_loc


def test_table4_roberta_reuses_bert():
    from repro.schedules import SCHEDULE_SOURCES

    assert SCHEDULE_SOURCES["RoBERTa"] is SCHEDULE_SOURCES["BERT"]
