PYTHON ?= python

.PHONY: test test-fast fuzz bench perf docs docs-check train-model

# tier-1 verification (pyproject.toml already pins pythonpath=src) — the
# full suite includes the seeded fuzz corpus (marked `slow`) — then the
# fast fuzz sweep and the BENCH_*.json perf-trajectory guard
test:
	$(PYTHON) -m pytest -x -q
	$(PYTHON) scripts/validate_schedules.py
	$(PYTHON) scripts/check_functional.py
	$(MAKE) fuzz
	$(PYTHON) scripts/check_bench.py

# everything except `slow` tests (cluster-heavy corpus, example subprocesses)
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

# the seeded fuzz corpus at a fast budget; failing schedules land in
# scripts/repros/ as replayable JSON (see docs/verify.md)
fuzz:
	$(PYTHON) scripts/fuzz_schedules.py --budget 40 --seed 0

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ -q -s

# Perf trajectory: refreshes BENCH_sim_speed.json + BENCH_pipeline.json
# + BENCH_moe.json + BENCH_planner.json + BENCH_learned.json.
perf:
	$(PYTHON) benchmarks/bench_sim_speed.py
	$(PYTHON) benchmarks/bench_pipeline.py
	$(PYTHON) benchmarks/bench_moe.py
	$(PYTHON) benchmarks/bench_planner.py
	$(PYTHON) benchmarks/bench_topology.py
	$(PYTHON) benchmarks/bench_learned.py
	$(PYTHON) benchmarks/bench_fusion.py

# Learned-cost-model training gate: fails if training is
# nondeterministic, the weights JSON doesn't round-trip byte-stably, or
# stale feature-schema weights are accepted.
train-model:
	$(PYTHON) scripts/train_cost_model.py --check

# Regenerate docs/primitives.md from the registry, then fail if the
# committed copy was stale (so CI catches un-regenerated docs).
docs:
	$(PYTHON) docs/gen_primitives.py --check || \
		{ $(PYTHON) docs/gen_primitives.py; \
		  echo "docs/primitives.md was stale and has been regenerated;" \
		       "review and commit it"; exit 1; }

docs-check:
	$(PYTHON) docs/gen_primitives.py --check
