PYTHON ?= python

.PHONY: test bench perf docs docs-check

# tier-1 verification (pyproject.toml already pins pythonpath=src)
test:
	$(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ -q -s

# Simulator speed trajectory: refreshes BENCH_sim_speed.json at the root.
perf:
	$(PYTHON) benchmarks/bench_sim_speed.py

# Regenerate docs/primitives.md from the registry, then fail if the
# committed copy was stale (so CI catches un-regenerated docs).
docs:
	$(PYTHON) docs/gen_primitives.py --check || \
		{ $(PYTHON) docs/gen_primitives.py; \
		  echo "docs/primitives.md was stale and has been regenerated;" \
		       "review and commit it"; exit 1; }

docs-check:
	$(PYTHON) docs/gen_primitives.py --check
