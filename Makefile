PYTHON ?= python

.PHONY: test bench perf docs docs-check

# tier-1 verification (pyproject.toml already pins pythonpath=src), then
# guard the committed BENCH_*.json perf trajectory against regressions
test:
	$(PYTHON) -m pytest -x -q
	$(PYTHON) scripts/check_bench.py

bench:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ -q -s

# Perf trajectory: refreshes BENCH_sim_speed.json + BENCH_pipeline.json.
perf:
	$(PYTHON) benchmarks/bench_sim_speed.py
	$(PYTHON) benchmarks/bench_pipeline.py

# Regenerate docs/primitives.md from the registry, then fail if the
# committed copy was stale (so CI catches un-regenerated docs).
docs:
	$(PYTHON) docs/gen_primitives.py --check || \
		{ $(PYTHON) docs/gen_primitives.py; \
		  echo "docs/primitives.md was stale and has been regenerated;" \
		       "review and commit it"; exit 1; }

docs-check:
	$(PYTHON) docs/gen_primitives.py --check
